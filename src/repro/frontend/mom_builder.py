"""MOM (Matrix Oriented Multimedia) instruction builder.

MOM instructions are vector (dimension Y) versions of the packed MMX-like
operations: one instruction applies the packed operation to the first ``VL``
rows of its matrix-register operands.  Memory instructions follow the
traditional vector ISA style (base register + stride register, length from
the vector-length register).  Reductions go through packed accumulators that
are updated by a *single* matrix instruction — the dimension-Y recurrence is
pipelined in hardware, so unlike MDMX there is no per-row architectural
dependence chain.
"""

from __future__ import annotations

import numpy as np

from repro.common.datatypes import (
    ElementType,
    U8,
    S16,
    pack_planes,
    unpack_word_fast,
)
from repro.frontend.scalar_builder import ScalarBuilder, _ref_int
from repro.isa import accum, matrixops, simdops
from repro.isa.opclasses import OpClass, RegFile
from repro.isa.registers import MAX_MATRIX_ROWS
from repro.trace.instruction import ref_interner

__all__ = ["MOMBuilder"]


# Interned matrix / accumulator lookups (shared per-file instances, see
# repro.trace.instruction.ref_interner).
_ref_mr = ref_interner(RegFile.MATRIX)
_ref_acc = ref_interner(RegFile.ACC)

_REF_VL = ref_interner(RegFile.VL)(0)


class MOMBuilder(ScalarBuilder):
    """Builder for the MOM matrix ISA.

    Matrix registers are referred to by index (0–15), accumulators by index
    (0–1).  The current vector length is set with :meth:`setvl` and consumed
    implicitly by every matrix instruction (and recorded as a source operand
    so the timing model sees the dependence).
    """

    isa_name = "mom"

    def __init__(self, machine, trace=None, name: str = "") -> None:
        super().__init__(machine, trace, name)
        self.mr = machine.matrix_regs
        self.accs = machine.mom_accs
        self.vc = machine.vector_control

    # ------------------------------------------------------------------
    # vector length control
    # ------------------------------------------------------------------

    @property
    def vl(self) -> int:
        """Current vector length (dimension Y rows)."""
        return self.vc.vl

    def setvl(self, length: int) -> None:
        """Set the vector-length register."""
        self.vc.set_vl(length)
        self._emit("setvl", OpClass.IALU, srcs=(), dsts=(_REF_VL,))

    # ------------------------------------------------------------------
    # emission helper
    # ------------------------------------------------------------------

    def _emit_matrix(self, opcode: str, opclass: OpClass, srcs, dsts,
                     etype: ElementType | None, vly: int | None = None,
                     ops: int | None = None, non_pipelined: bool = False) -> None:
        vlx = etype.lanes if etype is not None else 1
        vly = self.vl if vly is None else vly
        self._emit(
            opcode,
            opclass,
            srcs=tuple(srcs) + (_REF_VL,),
            dsts=tuple(dsts),
            ops=ops if ops is not None else vlx * vly,
            vlx=vlx,
            vly=vly,
            is_vector=True,
            non_pipelined=non_pipelined,
        )

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def mom_ld(self, mrd: int, base: int, stride: int,
               etype: ElementType = U8) -> None:
        """Strided matrix load: VL 64-bit rows from ``base``, ``stride`` bytes apart.

        ``base`` and ``stride`` are scalar register indices, as in the
        paper's ``mom_ldq MRi <- Rj, Rk``.
        """
        rows = self.memory.read_words_strided(
            self.regs.read(base), self.regs.read(stride), self.vl)
        self.mr.write(mrd, rows + [0] * (MAX_MATRIX_ROWS - len(rows)))
        self._emit_matrix("mom_ldq", OpClass.MEDIA_LOAD,
                          (_ref_int(base), _ref_int(stride)), (_ref_mr(mrd),), etype)

    def mom_st(self, mrs: int, base: int, stride: int,
               etype: ElementType = U8) -> None:
        """Strided matrix store of the first VL rows."""
        self.memory.write_words_strided(
            self.regs.read(base), self.regs.read(stride),
            self.mr.read(mrs)[: self.vl])
        self._emit_matrix("mom_stq", OpClass.MEDIA_STORE,
                          (_ref_mr(mrs), _ref_int(base), _ref_int(stride)), (), etype)

    def mom_load_const(self, mrd: int, matrix, etype: ElementType) -> None:
        """Materialise a constant matrix (modelled as one matrix load from a
        constant pool)."""
        arr = np.asarray(matrix)
        if arr.ndim == 1:
            arr = arr.reshape(1, -1)
        rows = [int(w) for w in pack_planes(arr, etype)]
        self.mr.write(mrd, rows + [0] * (MAX_MATRIX_ROWS - len(rows)))
        self._emit_matrix("mom_ld_const", OpClass.MEDIA_LOAD, (), (_ref_mr(mrd),),
                          etype, vly=len(rows))

    # ------------------------------------------------------------------
    # moves, broadcast, extraction
    # ------------------------------------------------------------------

    def mom_mov(self, mrd: int, mrs: int) -> None:
        """Matrix register move."""
        self.mr.write(mrd, self.mr.read(mrs))
        self._emit_matrix("mom_mov", OpClass.MEDIA_MISC, (_ref_mr(mrs),),
                          (_ref_mr(mrd),), None, ops=self.vl)

    def mom_splat(self, mrd: int, rs: int, etype: ElementType) -> None:
        """Broadcast a scalar register into every lane of every row."""
        word = simdops.splat(self.regs.read(rs), etype)
        self.mr.write(mrd, [word] * MAX_MATRIX_ROWS)
        self._emit_matrix("mom_splat", OpClass.MEDIA_MISC, (_ref_int(rs),),
                          (_ref_mr(mrd),), etype)

    def mom_zero(self, mrd: int) -> None:
        """Clear a matrix register."""
        self.mr.write(mrd, [0] * MAX_MATRIX_ROWS)
        self._emit_matrix("mom_zero", OpClass.MEDIA_ALU, (), (_ref_mr(mrd),), None,
                          ops=self.vl)

    def mom_extract(self, rd: int, mrs: int, row: int, lane: int,
                    etype: ElementType) -> None:
        """Extract one element into a scalar register."""
        lanes = unpack_word_fast(self.mr.read_row(mrs, row), etype)
        self.regs.write(rd, int(lanes[lane]))
        self._emit_matrix("mom_extract", OpClass.MEDIA_MISC, (_ref_mr(mrs),),
                          (_ref_int(rd),), None, ops=1, vly=1)

    # ------------------------------------------------------------------
    # row-mapped packed arithmetic
    # ------------------------------------------------------------------

    def _matrix_binop(self, opcode: str, opclass: OpClass, mrd: int, mra: int,
                      mrb: int, etype: ElementType, fn, *args,
                      rowbcast: bool = False, **kwargs) -> None:
        # The simdops functions are array-polymorphic: one call over a
        # (vl,) word array applies the packed op to every dimension-Y row
        # (the per-row loop lives on as matrixops.map_rows, the pinned
        # reference used by the differential tests).
        vl = self.vl
        aw = np.asarray(self.mr.read(mra)[:vl], dtype=np.uint64)
        if rowbcast:
            bw = np.full(vl, self.mr.read_row(mrb, 0), dtype=np.uint64)
        else:
            bw = np.asarray(self.mr.read(mrb)[:vl], dtype=np.uint64)
        res = fn(aw, bw, *args, **kwargs)
        out = [0] * MAX_MATRIX_ROWS
        out[:vl] = [int(w) for w in res]
        self.mr.write(mrd, out)
        self._emit_matrix(opcode, opclass, (_ref_mr(mra), _ref_mr(mrb)),
                          (_ref_mr(mrd),), etype)

    def _matrix_unop(self, opcode: str, opclass: OpClass, mrd: int, mra: int,
                     etype: ElementType, fn, *args, **kwargs) -> None:
        vl = self.vl
        aw = np.asarray(self.mr.read(mra)[:vl], dtype=np.uint64)
        res = fn(aw, *args, **kwargs)
        out = [0] * MAX_MATRIX_ROWS
        out[:vl] = [int(w) for w in res]
        self.mr.write(mrd, out)
        self._emit_matrix(opcode, opclass, (_ref_mr(mra),), (_ref_mr(mrd),), etype)

    def mom_padd(self, mrd: int, mra: int, mrb: int, etype: ElementType,
                 saturating: str = "wrap", rowbcast: bool = False) -> None:
        """Matrix packed add."""
        opcode = f"mom_padd{'s' if saturating == 'sat' else ''}{etype.name}"
        self._matrix_binop(opcode, OpClass.MEDIA_ALU, mrd, mra, mrb, etype,
                           simdops.padd, etype, saturating, rowbcast=rowbcast)

    def mom_psub(self, mrd: int, mra: int, mrb: int, etype: ElementType,
                 saturating: str = "wrap", rowbcast: bool = False) -> None:
        """Matrix packed subtract."""
        opcode = f"mom_psub{'s' if saturating == 'sat' else ''}{etype.name}"
        self._matrix_binop(opcode, OpClass.MEDIA_ALU, mrd, mra, mrb, etype,
                           simdops.psub, etype, saturating, rowbcast=rowbcast)

    def mom_pmull(self, mrd: int, mra: int, mrb: int, etype: ElementType = S16,
                  rowbcast: bool = False) -> None:
        """Matrix packed multiply (low)."""
        self._matrix_binop(f"mom_pmull{etype.name}", OpClass.MEDIA_MUL, mrd, mra,
                           mrb, etype, simdops.pmull, etype, rowbcast=rowbcast)

    def mom_pmulh(self, mrd: int, mra: int, mrb: int, etype: ElementType = S16,
                  rounding: bool = False, rowbcast: bool = False) -> None:
        """Matrix packed multiply (high)."""
        self._matrix_binop(f"mom_pmulh{etype.name}", OpClass.MEDIA_MUL, mrd, mra,
                           mrb, etype, simdops.pmulh, etype, rounding,
                           rowbcast=rowbcast)

    def mom_pmadd(self, mrd: int, mra: int, mrb: int,
                  etype: ElementType = S16, rowbcast: bool = False) -> None:
        """Matrix ``pmaddwd``: per-row multiply and add adjacent pairs."""
        self._matrix_binop("mom_pmaddwd", OpClass.MEDIA_MUL, mrd, mra, mrb, etype,
                           simdops.pmadd, etype, rowbcast=rowbcast)

    def mom_pavg(self, mrd: int, mra: int, mrb: int, etype: ElementType = U8,
                 rowbcast: bool = False) -> None:
        """Matrix packed average."""
        self._matrix_binop(f"mom_pavg{etype.name}", OpClass.MEDIA_ALU, mrd, mra,
                           mrb, etype, simdops.pavg, etype, rowbcast=rowbcast)

    def mom_pabsdiff(self, mrd: int, mra: int, mrb: int,
                     etype: ElementType = U8) -> None:
        """Matrix packed absolute difference."""
        self._matrix_binop("mom_pabsdiff", OpClass.MEDIA_ALU, mrd, mra, mrb, etype,
                           simdops.pabsdiff, etype)

    def mom_pmin(self, mrd: int, mra: int, mrb: int, etype: ElementType) -> None:
        """Matrix packed minimum."""
        self._matrix_binop(f"mom_pmin{etype.name}", OpClass.MEDIA_ALU, mrd, mra,
                           mrb, etype, simdops.pmin, etype)

    def mom_pmax(self, mrd: int, mra: int, mrb: int, etype: ElementType) -> None:
        """Matrix packed maximum."""
        self._matrix_binop(f"mom_pmax{etype.name}", OpClass.MEDIA_ALU, mrd, mra,
                           mrb, etype, simdops.pmax, etype)

    def mom_pand(self, mrd: int, mra: int, mrb: int) -> None:
        """Matrix bitwise AND."""
        self._matrix_binop("mom_pand", OpClass.MEDIA_ALU, mrd, mra, mrb, U8,
                           lambda a, b: simdops.pand(a, b))

    def mom_por(self, mrd: int, mra: int, mrb: int) -> None:
        """Matrix bitwise OR."""
        self._matrix_binop("mom_por", OpClass.MEDIA_ALU, mrd, mra, mrb, U8,
                           lambda a, b: simdops.por(a, b))

    def mom_pxor(self, mrd: int, mra: int, mrb: int) -> None:
        """Matrix bitwise exclusive OR."""
        self._matrix_binop("mom_pxor", OpClass.MEDIA_ALU, mrd, mra, mrb, U8,
                           lambda a, b: simdops.pxor(a, b))

    # ------------------------------------------------------------------
    # row-mapped shifts, pack/unpack
    # ------------------------------------------------------------------

    def mom_psll(self, mrd: int, mra: int, shift: int, etype: ElementType) -> None:
        """Matrix packed shift left logical by an immediate."""
        self._matrix_unop(f"mom_psll{etype.name}", OpClass.MEDIA_MISC, mrd, mra,
                          etype, simdops.psll, shift, etype)

    def mom_psrl(self, mrd: int, mra: int, shift: int, etype: ElementType) -> None:
        """Matrix packed shift right logical by an immediate."""
        self._matrix_unop(f"mom_psrl{etype.name}", OpClass.MEDIA_MISC, mrd, mra,
                          etype, simdops.psrl, shift, etype)

    def mom_psra(self, mrd: int, mra: int, shift: int, etype: ElementType) -> None:
        """Matrix packed shift right arithmetic by an immediate."""
        self._matrix_unop(f"mom_psra{etype.name}", OpClass.MEDIA_MISC, mrd, mra,
                          etype, simdops.psra, shift, etype)

    def mom_pshift_scale(self, mrd: int, mra: int, shift: int, etype: ElementType,
                         saturating: str = "wrap") -> None:
        """Matrix descale: arithmetic right shift with rounding per lane."""
        self._matrix_unop("mom_pscale", OpClass.MEDIA_MISC, mrd, mra, etype,
                          simdops.pshift_scale, shift, etype, saturating)

    def mom_packus(self, mrd: int, mra: int, mrb: int,
                   src_etype: ElementType) -> None:
        """Row-wise pack with unsigned saturation (two matrices into one)."""
        self._matrix_binop(f"mom_packus_{src_etype.name}", OpClass.MEDIA_MISC, mrd,
                           mra, mrb, src_etype, simdops.packus, src_etype)

    def mom_packss(self, mrd: int, mra: int, mrb: int,
                   src_etype: ElementType) -> None:
        """Row-wise pack with signed saturation."""
        self._matrix_binop(f"mom_packss_{src_etype.name}", OpClass.MEDIA_MISC, mrd,
                           mra, mrb, src_etype, simdops.packss, src_etype)

    def mom_punpckl(self, mrd: int, mra: int, mrb: int, etype: ElementType) -> None:
        """Row-wise interleave of low halves."""
        self._matrix_binop(f"mom_punpckl_{etype.name}", OpClass.MEDIA_MISC, mrd,
                           mra, mrb, etype, simdops.punpckl, etype)

    def mom_punpckh(self, mrd: int, mra: int, mrb: int, etype: ElementType) -> None:
        """Row-wise interleave of high halves."""
        self._matrix_binop(f"mom_punpckh_{etype.name}", OpClass.MEDIA_MISC, mrd,
                           mra, mrb, etype, simdops.punpckh, etype)

    # ------------------------------------------------------------------
    # matrix management
    # ------------------------------------------------------------------

    def mom_transpose(self, mrd: int, mra: int, etype: ElementType) -> None:
        """Matrix transpose (non-pipelined, 8 + C cycle latency)."""
        out = matrixops.transpose(self.mr.read(mra), etype, self.vl)
        self.mr.write(mrd, out)
        self._emit_matrix("mom_transpose", OpClass.MATRIX_MISC, (_ref_mr(mra),),
                          (_ref_mr(mrd),), etype, non_pipelined=True)

    def mom_transpose_pair(self, mrd_lo: int, mrd_hi: int, mrs_lo: int,
                           mrs_hi: int, etype: ElementType) -> None:
        """Transpose a square matrix that spans two matrix registers.

        A 16-bit 8x8 matrix occupies two registers (columns 0-3 and 4-7);
        the paper's transpose instruction handles the whole 8x8 matrix, so
        this is modelled as a single non-pipelined instruction with two
        sources and two destinations.
        """
        lo, hi = matrixops.transpose_pair(self.mr.read(mrs_lo), self.mr.read(mrs_hi),
                                          etype, self.vl)
        self.mr.write(mrd_lo, lo)
        self.mr.write(mrd_hi, hi)
        self._emit_matrix("mom_transpose_pair", OpClass.MATRIX_MISC,
                          (_ref_mr(mrs_lo), _ref_mr(mrs_hi)),
                          (_ref_mr(mrd_lo), _ref_mr(mrd_hi)), etype,
                          ops=self.vl * 2 * etype.lanes, non_pipelined=True)

    # ------------------------------------------------------------------
    # packed-accumulator reductions (dimension Y)
    # ------------------------------------------------------------------

    def mom_acc_clear(self, acc: int, etype: ElementType = S16) -> None:
        """Zero a MOM accumulator."""
        self.accs.clear(acc)
        self._emit_matrix("mom_acc_clear", OpClass.MEDIA_ACC, (), (_ref_acc(acc),),
                          etype, vly=1, ops=1)

    def mom_macc_madd(self, acc: int, mra: int, mrb: int,
                      etype: ElementType = S16) -> None:
        """``acc[lane] += sum_rows(a[row][lane] * b[row][lane])`` — one
        instruction performs the whole dimension-Y multiply-accumulate."""
        new = matrixops.reduce_mul_add(self.accs.read(acc), self.mr.read(mra),
                                       self.mr.read(mrb), etype, self.vl)
        self.accs.write(acc, new)
        self._emit_matrix(f"mom_macc_madd{etype.name}", OpClass.MEDIA_ACC,
                          (_ref_mr(mra), _ref_mr(mrb), _ref_acc(acc)),
                          (_ref_acc(acc),), etype)

    def mom_macc_add(self, acc: int, mra: int, etype: ElementType = S16) -> None:
        """``acc[lane] += sum_rows(a[row][lane])``."""
        new = matrixops.reduce_add(self.accs.read(acc), self.mr.read(mra), etype,
                                   self.vl)
        self.accs.write(acc, new)
        self._emit_matrix(f"mom_macc_add{etype.name}", OpClass.MEDIA_ACC,
                          (_ref_mr(mra), _ref_acc(acc)), (_ref_acc(acc),), etype)

    def mom_macc_absdiff(self, acc: int, mra: int, mrb: int,
                         etype: ElementType = U8) -> None:
        """``acc[lane] += sum_rows(|a - b|)`` (motion-estimation reduction)."""
        new = matrixops.reduce_abs_diff_add(self.accs.read(acc), self.mr.read(mra),
                                            self.mr.read(mrb), etype, self.vl)
        self.accs.write(acc, new)
        self._emit_matrix("mom_macc_absdiff", OpClass.MEDIA_ACC,
                          (_ref_mr(mra), _ref_mr(mrb), _ref_acc(acc)),
                          (_ref_acc(acc),), etype)

    def mom_acc_read(self, mrd: int, acc: int, etype: ElementType, shift: int = 0,
                     rounding: bool = True, saturating: bool = True,
                     row: int = 0) -> None:
        """Round/clip the accumulator into one row of a matrix register.

        ``row`` selects the destination row (default 0), which lets a loop
        deposit successive reduction results into consecutive rows of a
        matrix register (used by the IDCT kernel).
        """
        word = accum.acc_read(self.accs.read(acc), etype, shift, rounding, saturating)
        rows = self.mr.read(mrd)
        rows[row] = word
        self.mr.write(mrd, rows)
        self._emit_matrix("mom_acc_read", OpClass.MEDIA_ACC, (_ref_acc(acc),),
                          (_ref_mr(mrd),), etype, vly=1, ops=etype.lanes)

    def mom_acc_read_scalar(self, rd: int, acc: int, etype: ElementType,
                            shift: int = 0) -> None:
        """Sum all accumulator lanes into a scalar register."""
        total = accum.acc_read_scalar(self.accs.read(acc), etype.lanes, shift)
        self.regs.write(rd, total)
        self._emit_matrix("mom_acc_read_scalar", OpClass.MEDIA_ACC, (_ref_acc(acc),),
                          (_ref_int(rd),), etype, vly=1, ops=etype.lanes)
