"""Convenience re-exports and factory helpers for the ISA builders."""

from __future__ import annotations

from typing import Optional

from repro.frontend.machine import FunctionalMachine
from repro.frontend.scalar_builder import ScalarBuilder
from repro.frontend.simd_builder import MMXBuilder, MDMXBuilder
from repro.frontend.mom_builder import MOMBuilder
from repro.trace.container import Trace

__all__ = [
    "ScalarBuilder",
    "MMXBuilder",
    "MDMXBuilder",
    "MOMBuilder",
    "BUILDER_CLASSES",
    "make_builder",
]

#: Map from ISA name to builder class, in the order the paper reports them.
BUILDER_CLASSES = {
    "scalar": ScalarBuilder,
    "mmx": MMXBuilder,
    "mdmx": MDMXBuilder,
    "mom": MOMBuilder,
}

#: ISA names in the paper's reporting order (Alpha baseline first).
ISA_ORDER = ("scalar", "mmx", "mdmx", "mom")


def make_builder(isa: str, machine: Optional[FunctionalMachine] = None,
                 name: str = "") -> ScalarBuilder:
    """Create a builder (and, if needed, a fresh machine) for ``isa``.

    Parameters
    ----------
    isa:
        One of ``"scalar"``, ``"mmx"``, ``"mdmx"``, ``"mom"``.
    machine:
        Optional pre-populated functional machine; a new one is created when
        omitted.
    name:
        Trace name (usually the kernel name).
    """
    try:
        cls = BUILDER_CLASSES[isa]
    except KeyError as exc:
        raise ValueError(
            f"unknown ISA {isa!r}; expected one of {sorted(BUILDER_CLASSES)}"
        ) from exc
    if machine is None:
        machine = FunctionalMachine()
    return cls(machine, Trace(name=name, isa=isa), name=name)
