"""Convenience re-exports and factory helpers for the ISA builders.

All builders share :class:`~repro.frontend.scalar_builder.ScalarBuilder`'s
block-emission primitives: ``unroll(count, body, bulk)`` records one loop
iteration, block-appends the remaining record rows via
``Trace.replicate_tail`` (legal because the emitted record — opcode,
opclass, register indices, shape — is iteration-invariant for these
loops), and delegates the middle iterations' architectural effects to a
vectorised ``bulk`` that finishes with a ``replay`` (semantics-only,
emission-suppressed) of the final iteration.  Emitted streams are
byte-identical to the per-iteration loops, so block emission does NOT bump
:data:`BUILDER_VERSION`.
"""

from __future__ import annotations

from typing import Optional

from repro.frontend.machine import FunctionalMachine
from repro.frontend.scalar_builder import ScalarBuilder
from repro.frontend.simd_builder import MMXBuilder, MDMXBuilder
from repro.frontend.mom_builder import MOMBuilder
from repro.trace.container import Trace

__all__ = [
    "ScalarBuilder",
    "MMXBuilder",
    "MDMXBuilder",
    "MOMBuilder",
    "BUILDER_CLASSES",
    "BUILDER_VERSION",
    "make_builder",
]

#: Version tag of the functional front end's *emitted instruction streams*.
#: Bump whenever a builder or kernel change can alter the trace produced for
#: any (kernel, ISA, workload) — the trace cache folds this into every key,
#: so a bump invalidates all cached traces.  Pure refactors that keep every
#: emitted stream identical must NOT bump it.
BUILDER_VERSION = "1"

#: Map from ISA name to builder class, in the order the paper reports them.
BUILDER_CLASSES = {
    "scalar": ScalarBuilder,
    "mmx": MMXBuilder,
    "mdmx": MDMXBuilder,
    "mom": MOMBuilder,
}

#: ISA names in the paper's reporting order (Alpha baseline first).
ISA_ORDER = ("scalar", "mmx", "mdmx", "mom")


def make_builder(isa: str, machine: Optional[FunctionalMachine] = None,
                 name: str = "", columns: bool = True) -> ScalarBuilder:
    """Create a builder (and, if needed, a fresh machine) for ``isa``.

    Parameters
    ----------
    isa:
        One of ``"scalar"``, ``"mmx"``, ``"mdmx"``, ``"mom"``.
    machine:
        Optional pre-populated functional machine; a new one is created when
        omitted.
    name:
        Trace name (usually the kernel name).
    columns:
        Emit into the column recorder (the default, zero-object fast path)
        or the object-mode :class:`~repro.trace.container.Trace` (the
        reference path the benchmarks compare against).  The emitted
        instruction stream is identical either way.
    """
    try:
        cls = BUILDER_CLASSES[isa]
    except KeyError as exc:
        raise ValueError(
            f"unknown ISA {isa!r}; expected one of {sorted(BUILDER_CLASSES)}"
        ) from exc
    if machine is None:
        machine = FunctionalMachine()
    return cls(machine, Trace(name=name, isa=isa, columns=columns), name=name)
