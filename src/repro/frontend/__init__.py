"""Functional front end: machine state plus per-ISA instruction builders.

Kernels are written against the builder APIs (:class:`ScalarBuilder`,
:class:`MMXBuilder`, :class:`MDMXBuilder`, :class:`MOMBuilder`).  Every
builder call executes the instruction's semantics immediately against the
shared :class:`FunctionalMachine` (so kernel outputs can be checked against
NumPy golden references) *and* records the dynamic instruction for the
timing model — by default into the zero-object column recorder
(:mod:`repro.trace.columns`), whose flat arrays the fast timing backends
adopt directly.  This mirrors the paper's methodology of emulation
libraries whose calls are later collapsed into single simulated
instructions.
"""

from repro.frontend.machine import FunctionalMachine, Memory
from repro.frontend.scalar_builder import ScalarBuilder
from repro.frontend.simd_builder import MMXBuilder, MDMXBuilder
from repro.frontend.mom_builder import MOMBuilder
from repro.frontend import builders

__all__ = [
    "FunctionalMachine",
    "Memory",
    "ScalarBuilder",
    "MMXBuilder",
    "MDMXBuilder",
    "MOMBuilder",
    "builders",
]
