"""Scalar (Alpha-like) instruction builder.

The scalar builder is the baseline ISA of the paper ("Alpha code") and also
the base class of the multimedia builders: MMX / MDMX / MOM kernels still
need scalar instructions for address arithmetic, loop control and scalar
post-processing, and those overhead instructions are a first-class part of
the paper's analysis (they are what the R metric measures).

Every emit method executes its semantics against the shared
:class:`~repro.frontend.machine.FunctionalMachine` and appends a
:class:`~repro.trace.instruction.DynInstr` to the trace.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional, Sequence

from repro.frontend.machine import FunctionalMachine
from repro.isa.opclasses import OpClass, RegFile
from repro.trace.container import Trace
from repro.trace.instruction import RegRef, ref_interner

__all__ = ["ScalarBuilder"]

_WORD64_MASK = (1 << 64) - 1

#: Interned scalar-register lookup: every emitted instruction names its
#: operands through the shared per-file instances, so the emission hot
#: path allocates no RegRef objects (and the column recorder's interning
#: dict hashes the same few instances over and over).
_ref_int = ref_interner(RegFile.INT)


class ScalarBuilder:
    """Builder for the scalar baseline ISA.

    Scalar registers are referred to by integer index (0–31); register 31 is
    hard-wired to zero.  Values are Python ints and are *not* wrapped to 64
    bits (addresses and loop counters never approach that range), except for
    explicit logical operations.
    """

    isa_name = "scalar"

    def __init__(self, machine: FunctionalMachine, trace: Optional[Trace] = None,
                 name: str = "") -> None:
        self.machine = machine
        self.trace = trace if trace is not None else Trace(name=name, isa=self.isa_name)
        if not self.trace.isa:
            self.trace.isa = self.isa_name
        self.regs = machine.int_regs
        self.memory = machine.memory

    # ------------------------------------------------------------------
    # trace plumbing
    # ------------------------------------------------------------------

    def _emit(
        self,
        opcode: str,
        opclass: OpClass,
        srcs: Sequence[RegRef] = (),
        dsts: Sequence[RegRef] = (),
        ops: int = 1,
        vlx: int = 1,
        vly: int = 1,
        is_vector: bool = False,
        non_pipelined: bool = False,
    ) -> None:
        # One positional call into the trace's emission path: a column-mode
        # trace (the default) records flat ids and never constructs a
        # DynInstr; an object-mode trace builds the instruction there.
        self.trace.emit(opcode, opclass, tuple(srcs), tuple(dsts), ops,
                        vlx, vly, is_vector, non_pipelined, self.isa_name)

    # ------------------------------------------------------------------
    # block emission
    # ------------------------------------------------------------------

    @contextmanager
    def _suppress_emission(self):
        """Run builder semantics without recording any instructions.

        Shadows :meth:`_emit` with a no-op *instance* attribute, so every
        emission helper (``_emit_media`` and ``_emit_matrix`` in the
        subclasses funnel through it) goes quiet while register, memory
        and accumulator updates still happen.  Nesting is safe: only the
        outermost context removes the shadow.
        """
        already = "_emit" in self.__dict__
        if not already:
            self.__dict__["_emit"] = lambda *args, **kwargs: None
        try:
            yield
        finally:
            if not already:
                del self.__dict__["_emit"]

    def replay(self, body, iteration: int) -> None:
        """Execute ``body(iteration)`` with emission suppressed.

        The closing step of a :meth:`unroll` ``bulk``: running the *last*
        iteration's semantics silently reproduces every loop-carried
        register, accumulator and matrix value exactly, so the bulk only
        has to vectorise the middle iterations' memory effects.
        """
        with self._suppress_emission():
            body(iteration)

    def unroll(self, count: int, body, bulk=None) -> None:
        """Emit ``count`` iterations of a kernel loop as one record block.

        ``body(i)`` must emit an *iteration-invariant* record sequence —
        the same opcodes, op counts and register indices every iteration.
        Immediates, addresses and data values may differ freely: emitted
        records carry none of them.  Loops that rotate register numbers
        per iteration cannot use this helper.

        On a column-mode trace the builder runs ``body(0)`` normally,
        replicates its record block ``count - 1`` times in the columns
        (:meth:`~repro.trace.container.Trace.replicate_tail`), then calls
        ``bulk(1, count)`` to apply the remaining iterations' semantics in
        one step.  ``bulk(lo, hi)`` must leave memory and every register
        file exactly as running ``body(lo) .. body(hi - 1)`` would —
        typically vectorised NumPy writes for the middle iterations'
        memory effects followed by ``self.replay(body, hi - 1)`` for the
        loop-carried state.

        Without ``bulk``, with ``count == 1``, or on an object-mode trace,
        every iteration runs through ``body`` — the per-iteration
        reference path that the column/object equivalence tests pin the
        block path against.
        """
        if count <= 0:
            return
        # Inside a replay (suppressed emission) nothing is recorded, so a
        # nested unroll takes the bulk shortcut without touching the trace
        # — the semantics of all ``count`` iterations at body(0)+bulk cost.
        suppressed = "_emit" in self.__dict__
        if bulk is None or count == 1 or (
                self.trace.columns is None and not suppressed):
            for i in range(count):
                body(i)
            return
        start = len(self.trace)
        body(0)
        if not suppressed:
            self.trace.replicate_tail(start, count - 1)
        bulk(1, count)

    # ------------------------------------------------------------------
    # immediates and moves
    # ------------------------------------------------------------------

    def li(self, rd: int, imm: int) -> None:
        """Load an immediate into a scalar register."""
        self.regs.write(rd, int(imm))
        self._emit("li", OpClass.IALU, srcs=(), dsts=(_ref_int(rd),))

    def mov(self, rd: int, rs: int) -> None:
        """Register-to-register move."""
        self.regs.write(rd, self.regs.read(rs))
        self._emit("mov", OpClass.IALU, srcs=(_ref_int(rs),), dsts=(_ref_int(rd),))

    # ------------------------------------------------------------------
    # integer ALU
    # ------------------------------------------------------------------

    def _binop(self, opcode: str, rd: int, ra: int, rb: int, fn) -> None:
        result = fn(self.regs.read(ra), self.regs.read(rb))
        self.regs.write(rd, result)
        self._emit(opcode, OpClass.IALU, srcs=(_ref_int(ra), _ref_int(rb)),
                   dsts=(_ref_int(rd),))

    def _immop(self, opcode: str, rd: int, ra: int, imm: int, fn) -> None:
        result = fn(self.regs.read(ra), int(imm))
        self.regs.write(rd, result)
        self._emit(opcode, OpClass.IALU, srcs=(_ref_int(ra),), dsts=(_ref_int(rd),))

    def add(self, rd: int, ra: int, rb: int) -> None:
        """Integer add."""
        self._binop("add", rd, ra, rb, lambda a, b: a + b)

    def addi(self, rd: int, ra: int, imm: int) -> None:
        """Integer add with an immediate."""
        self._immop("addi", rd, ra, imm, lambda a, b: a + b)

    def sub(self, rd: int, ra: int, rb: int) -> None:
        """Integer subtract."""
        self._binop("sub", rd, ra, rb, lambda a, b: a - b)

    def subi(self, rd: int, ra: int, imm: int) -> None:
        """Integer subtract with an immediate."""
        self._immop("subi", rd, ra, imm, lambda a, b: a - b)

    def and_(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise AND."""
        self._binop("and", rd, ra, rb, lambda a, b: (a & b) & _WORD64_MASK)

    def andi(self, rd: int, ra: int, imm: int) -> None:
        """Bitwise AND with an immediate."""
        self._immop("andi", rd, ra, imm, lambda a, b: (a & b) & _WORD64_MASK)

    def or_(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise OR."""
        self._binop("or", rd, ra, rb, lambda a, b: (a | b) & _WORD64_MASK)

    def xor(self, rd: int, ra: int, rb: int) -> None:
        """Bitwise exclusive OR."""
        self._binop("xor", rd, ra, rb, lambda a, b: (a ^ b) & _WORD64_MASK)

    def slli(self, rd: int, ra: int, shift: int) -> None:
        """Shift left logical by an immediate."""
        self._immop("slli", rd, ra, shift, lambda a, s: a << s)

    def srai(self, rd: int, ra: int, shift: int) -> None:
        """Shift right arithmetic by an immediate."""
        self._immop("srai", rd, ra, shift, lambda a, s: a >> s)

    def srli(self, rd: int, ra: int, shift: int) -> None:
        """Shift right logical (64-bit) by an immediate."""
        self._immop("srli", rd, ra, shift, lambda a, s: (a & _WORD64_MASK) >> s)

    def mul(self, rd: int, ra: int, rb: int) -> None:
        """Integer multiply (long latency)."""
        result = self.regs.read(ra) * self.regs.read(rb)
        self.regs.write(rd, result)
        self._emit("mul", OpClass.IMUL, srcs=(_ref_int(ra), _ref_int(rb)),
                   dsts=(_ref_int(rd),))

    def muli(self, rd: int, ra: int, imm: int) -> None:
        """Integer multiply by an immediate (long latency)."""
        result = self.regs.read(ra) * int(imm)
        self.regs.write(rd, result)
        self._emit("muli", OpClass.IMUL, srcs=(_ref_int(ra),), dsts=(_ref_int(rd),))

    # ------------------------------------------------------------------
    # comparisons and conditional moves
    # ------------------------------------------------------------------

    def cmplt(self, rd: int, ra: int, rb: int) -> None:
        """``rd = 1 if ra < rb else 0`` (signed)."""
        self._binop("cmplt", rd, ra, rb, lambda a, b: 1 if a < b else 0)

    def cmple(self, rd: int, ra: int, rb: int) -> None:
        """``rd = 1 if ra <= rb else 0``."""
        self._binop("cmple", rd, ra, rb, lambda a, b: 1 if a <= b else 0)

    def cmpeq(self, rd: int, ra: int, rb: int) -> None:
        """``rd = 1 if ra == rb else 0``."""
        self._binop("cmpeq", rd, ra, rb, lambda a, b: 1 if a == b else 0)

    def cmplti(self, rd: int, ra: int, imm: int) -> None:
        """``rd = 1 if ra < imm else 0``."""
        self._immop("cmplti", rd, ra, imm, lambda a, b: 1 if a < b else 0)

    def cmovlt(self, rd: int, rc: int, rs: int) -> None:
        """Conditional move: ``rd = rs`` if ``rc != 0``."""
        if self.regs.read(rc) != 0:
            self.regs.write(rd, self.regs.read(rs))
        self._emit("cmovlt", OpClass.IALU,
                   srcs=(_ref_int(rc), _ref_int(rs), _ref_int(rd)),
                   dsts=(_ref_int(rd),))

    def max_(self, rd: int, ra: int, rb: int) -> None:
        """``rd = max(ra, rb)`` — modelled as one ALU op (cmov-style)."""
        self._binop("max", rd, ra, rb, max)

    def min_(self, rd: int, ra: int, rb: int) -> None:
        """``rd = min(ra, rb)`` — modelled as one ALU op (cmov-style)."""
        self._binop("min", rd, ra, rb, min)

    def abs_(self, rd: int, ra: int) -> None:
        """``rd = |ra|`` — modelled as one ALU op."""
        self.regs.write(rd, abs(self.regs.read(ra)))
        self._emit("abs", OpClass.IALU, srcs=(_ref_int(ra),), dsts=(_ref_int(rd),))

    def clamp(self, rd: int, ra: int, lo: int, hi: int) -> None:
        """Clamp ``ra`` into ``[lo, hi]`` — two ALU operations (min + max)."""
        value = self.regs.read(ra)
        self.regs.write(rd, max(lo, min(hi, value)))
        self._emit("clamp_lo", OpClass.IALU, srcs=(_ref_int(ra),), dsts=(_ref_int(rd),))
        self._emit("clamp_hi", OpClass.IALU, srcs=(_ref_int(rd),), dsts=(_ref_int(rd),))

    # ------------------------------------------------------------------
    # branches (perfectly predicted in the timing model)
    # ------------------------------------------------------------------

    def branch(self, rc: int, opcode: str = "bne") -> None:
        """A conditional branch consuming ``rc``; direction is irrelevant to
        the timing model (perfect prediction) but the instruction still
        occupies fetch/issue/commit bandwidth."""
        self._emit(opcode, OpClass.BRANCH, srcs=(_ref_int(rc),), dsts=())

    def jump(self) -> None:
        """Unconditional branch (loop back-edge)."""
        self._emit("br", OpClass.BRANCH, srcs=(), dsts=())

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------

    def _load(self, opcode: str, rd: int, base: int, offset: int, nbytes: int,
              signed: bool) -> None:
        addr = self.regs.read(base) + offset
        value = (self.memory.read_sint(addr, nbytes) if signed
                 else self.memory.read_uint(addr, nbytes))
        self.regs.write(rd, value)
        self._emit(opcode, OpClass.LOAD, srcs=(_ref_int(base),), dsts=(_ref_int(rd),))

    def _store(self, opcode: str, rs: int, base: int, offset: int, nbytes: int) -> None:
        addr = self.regs.read(base) + offset
        self.memory.write_uint(addr, self.regs.read(rs), nbytes)
        self._emit(opcode, OpClass.STORE, srcs=(_ref_int(rs), _ref_int(base)), dsts=())

    def ldbu(self, rd: int, base: int, offset: int = 0) -> None:
        """Load unsigned byte."""
        self._load("ldbu", rd, base, offset, 1, signed=False)

    def ldb(self, rd: int, base: int, offset: int = 0) -> None:
        """Load signed byte."""
        self._load("ldb", rd, base, offset, 1, signed=True)

    def ldwu(self, rd: int, base: int, offset: int = 0) -> None:
        """Load unsigned 16-bit halfword."""
        self._load("ldwu", rd, base, offset, 2, signed=False)

    def ldw(self, rd: int, base: int, offset: int = 0) -> None:
        """Load signed 16-bit halfword."""
        self._load("ldw", rd, base, offset, 2, signed=True)

    def ldl(self, rd: int, base: int, offset: int = 0) -> None:
        """Load signed 32-bit longword."""
        self._load("ldl", rd, base, offset, 4, signed=True)

    def ldq(self, rd: int, base: int, offset: int = 0) -> None:
        """Load 64-bit quadword."""
        self._load("ldq", rd, base, offset, 8, signed=False)

    def stb(self, rs: int, base: int, offset: int = 0) -> None:
        """Store byte."""
        self._store("stb", rs, base, offset, 1)

    def stw(self, rs: int, base: int, offset: int = 0) -> None:
        """Store 16-bit halfword."""
        self._store("stw", rs, base, offset, 2)

    def stl(self, rs: int, base: int, offset: int = 0) -> None:
        """Store 32-bit longword."""
        self._store("stl", rs, base, offset, 4)

    def stq(self, rs: int, base: int, offset: int = 0) -> None:
        """Store 64-bit quadword."""
        self._store("stq", rs, base, offset, 8)

    # ------------------------------------------------------------------
    # structured loop helper
    # ------------------------------------------------------------------

    def loop(self, count_reg: int, body, step: int = 1):
        """Emit a counted loop: run ``body(iteration)`` then the loop-control
        overhead (decrement + branch) that a compiled scalar loop carries.

        ``count_reg`` must already hold the trip count.  The helper is a
        convenience used by the scalar kernel variants; the multimedia
        variants typically use explicit unrolling instead.
        """
        trip = self.regs.read(count_reg)
        iteration = 0
        while self.regs.read(count_reg) > 0:
            body(iteration)
            self.subi(count_reg, count_reg, step)
            self.branch(count_reg, "bgt")
            iteration += 1
            if iteration > trip + 1:  # pragma: no cover - defensive
                raise RuntimeError("loop failed to terminate")
