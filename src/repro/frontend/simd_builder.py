"""MMX-like and MDMX-like instruction builders.

:class:`MMXBuilder` models the paper's MMX-like extension: packed sub-word
operations on 32 logical 64-bit multimedia registers, with multimedia loads
and stores.  :class:`MDMXBuilder` extends it with the packed accumulators of
the MDMX-like extension (section 3.1 of the paper) — the accumulator-operate
instructions carry a read-modify-write dependence on the accumulator, which
is the recurrence the paper discusses.
"""

from __future__ import annotations

import numpy as np

from repro.common.datatypes import ElementType, U8, S16, U16, S32, pack_word, unpack_word
from repro.frontend.scalar_builder import ScalarBuilder, _ref_int
from repro.isa import accum, simdops
from repro.isa.opclasses import OpClass, RegFile
from repro.trace.instruction import ref_interner

__all__ = ["MMXBuilder", "MDMXBuilder"]


# Interned multimedia / accumulator lookups (shared per-file instances,
# see repro.trace.instruction.ref_interner).
_ref_mm = ref_interner(RegFile.MEDIA)
_ref_acc = ref_interner(RegFile.ACC)


class MMXBuilder(ScalarBuilder):
    """Builder for the MMX-like multimedia extension.

    Multimedia registers are referred to by integer index (0–31).  All
    packed-operation emit methods take an :class:`ElementType` so the same
    method covers the byte / halfword / longword opcode variants.
    """

    isa_name = "mmx"

    def __init__(self, machine, trace=None, name: str = "") -> None:
        super().__init__(machine, trace, name)
        self.mm = machine.media_regs

    # ------------------------------------------------------------------
    # emission helper for packed operations
    # ------------------------------------------------------------------

    def _emit_media(self, opcode: str, opclass: OpClass, srcs, dsts,
                    etype: ElementType | None, ops: int | None = None) -> None:
        vlx = etype.lanes if etype is not None else 1
        self._emit(
            opcode,
            opclass,
            srcs=srcs,
            dsts=dsts,
            ops=ops if ops is not None else vlx,
            vlx=vlx,
            vly=1,
            is_vector=True,
        )

    # ------------------------------------------------------------------
    # multimedia memory and moves
    # ------------------------------------------------------------------

    def movq_ld(self, mmd: int, base: int, offset: int = 0,
                etype: ElementType = U8) -> None:
        """Load a 64-bit packed word from ``[base + offset]``.

        ``etype`` only affects operation accounting (how many elements the
        load brings in), not the bits moved.
        """
        addr = self.regs.read(base) + offset
        word = self.memory.read_uint(addr, 8)
        self.mm.write(mmd, word)
        self._emit_media("movq_ld", OpClass.MEDIA_LOAD, (_ref_int(base),),
                         (_ref_mm(mmd),), etype)

    def movq_st(self, mms: int, base: int, offset: int = 0,
                etype: ElementType = U8) -> None:
        """Store a 64-bit packed word to ``[base + offset]``."""
        addr = self.regs.read(base) + offset
        self.memory.write_uint(addr, self.mm.read(mms), 8)
        self._emit_media("movq_st", OpClass.MEDIA_STORE,
                         (_ref_mm(mms), _ref_int(base)), (), etype)

    def movd_ld(self, mmd: int, base: int, offset: int = 0,
                etype: ElementType = U8) -> None:
        """Load a 32-bit value into the low half of a multimedia register."""
        addr = self.regs.read(base) + offset
        word = self.memory.read_uint(addr, 4)
        self.mm.write(mmd, word)
        self._emit_media("movd_ld", OpClass.MEDIA_LOAD, (_ref_int(base),),
                         (_ref_mm(mmd),), etype, ops=max(1, etype.lanes // 2))

    def movd_st(self, mms: int, base: int, offset: int = 0,
                etype: ElementType = U8) -> None:
        """Store the low 32 bits of a multimedia register."""
        addr = self.regs.read(base) + offset
        self.memory.write_uint(addr, self.mm.read(mms) & 0xFFFFFFFF, 4)
        self._emit_media("movd_st", OpClass.MEDIA_STORE,
                         (_ref_mm(mms), _ref_int(base)), (), etype,
                         ops=max(1, etype.lanes // 2))

    def movq(self, mmd: int, mms: int) -> None:
        """Register-to-register multimedia move."""
        self.mm.write(mmd, self.mm.read(mms))
        self._emit_media("movq", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_mm(mmd),), None, ops=1)

    def movd_from_int(self, mmd: int, rs: int) -> None:
        """Move a scalar integer register into a multimedia register."""
        self.mm.write(mmd, self.regs.read(rs) & ((1 << 64) - 1))
        self._emit_media("movd_from_int", OpClass.MEDIA_MISC, (_ref_int(rs),),
                         (_ref_mm(mmd),), None, ops=1)

    def movd_to_int(self, rd: int, mms: int, lane: int = 0,
                    etype: ElementType = S32) -> None:
        """Extract one lane of a multimedia register into a scalar register."""
        lanes = unpack_word(self.mm.read(mms), etype)
        self.regs.write(rd, int(lanes[lane]))
        self._emit_media("movd_to_int", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_int(rd),), None, ops=1)

    def splat(self, mmd: int, rs: int, etype: ElementType) -> None:
        """Broadcast a scalar register value into every lane."""
        self.mm.write(mmd, simdops.splat(self.regs.read(rs), etype))
        self._emit_media("splat", OpClass.MEDIA_MISC, (_ref_int(rs),),
                         (_ref_mm(mmd),), etype)

    def load_const(self, mmd: int, lanes, etype: ElementType) -> None:
        """Materialise a packed constant (modelled as one load from a
        constant pool, as a compiler would emit)."""
        self.mm.write(mmd, pack_word(np.asarray(lanes) & etype.mask, etype))
        self._emit_media("ld_const", OpClass.MEDIA_LOAD, (), (_ref_mm(mmd),), etype)

    def pzero(self, mmd: int) -> None:
        """Clear a multimedia register (pxor mm, mm idiom)."""
        self.mm.write(mmd, 0)
        self._emit_media("pzero", OpClass.MEDIA_ALU, (), (_ref_mm(mmd),), None, ops=1)

    # ------------------------------------------------------------------
    # packed arithmetic
    # ------------------------------------------------------------------

    def _packed_binop(self, opcode: str, opclass: OpClass, mmd: int, mma: int,
                      mmb: int, etype: ElementType, fn, *args, **kwargs) -> None:
        result = fn(self.mm.read(mma), self.mm.read(mmb), *args, **kwargs)
        self.mm.write(mmd, result)
        self._emit_media(opcode, opclass, (_ref_mm(mma), _ref_mm(mmb)),
                         (_ref_mm(mmd),), etype)

    def padd(self, mmd: int, mma: int, mmb: int, etype: ElementType,
             saturating: str = "wrap") -> None:
        """Packed add (``saturating`` is ``"wrap"`` or ``"sat"``)."""
        opcode = f"padd{'s' if saturating == 'sat' else ''}{etype.name}"
        self._packed_binop(opcode, OpClass.MEDIA_ALU, mmd, mma, mmb, etype,
                           simdops.padd, etype, saturating)

    def psub(self, mmd: int, mma: int, mmb: int, etype: ElementType,
             saturating: str = "wrap") -> None:
        """Packed subtract."""
        opcode = f"psub{'s' if saturating == 'sat' else ''}{etype.name}"
        self._packed_binop(opcode, OpClass.MEDIA_ALU, mmd, mma, mmb, etype,
                           simdops.psub, etype, saturating)

    def pmull(self, mmd: int, mma: int, mmb: int, etype: ElementType = S16) -> None:
        """Packed multiply, low halves of the products."""
        self._packed_binop(f"pmull{etype.name}", OpClass.MEDIA_MUL, mmd, mma, mmb,
                           etype, simdops.pmull, etype)

    def pmulh(self, mmd: int, mma: int, mmb: int, etype: ElementType = S16,
              rounding: bool = False) -> None:
        """Packed multiply, high halves of the products."""
        self._packed_binop(f"pmulh{etype.name}", OpClass.MEDIA_MUL, mmd, mma, mmb,
                           etype, simdops.pmulh, etype, rounding)

    def pmadd(self, mmd: int, mma: int, mmb: int, etype: ElementType = S16) -> None:
        """``pmaddwd``: multiply lanes and add adjacent pairs into wide lanes."""
        self._packed_binop("pmaddwd", OpClass.MEDIA_MUL, mmd, mma, mmb, etype,
                           simdops.pmadd, etype)

    def psad(self, mmd: int, mma: int, mmb: int, etype: ElementType = U8) -> None:
        """Sum of absolute differences across lanes (scalar result in lane 0)."""
        self._packed_binop("psadbw", OpClass.MEDIA_ALU, mmd, mma, mmb, etype,
                           simdops.psad, etype)

    def pabsdiff(self, mmd: int, mma: int, mmb: int, etype: ElementType = U8) -> None:
        """Packed absolute difference."""
        self._packed_binop("pabsdiff", OpClass.MEDIA_ALU, mmd, mma, mmb, etype,
                           simdops.pabsdiff, etype)

    def pavg(self, mmd: int, mma: int, mmb: int, etype: ElementType = U8) -> None:
        """Packed average with rounding."""
        self._packed_binop(f"pavg{etype.name}", OpClass.MEDIA_ALU, mmd, mma, mmb,
                           etype, simdops.pavg, etype)

    def pmin(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Packed minimum."""
        self._packed_binop(f"pmin{etype.name}", OpClass.MEDIA_ALU, mmd, mma, mmb,
                           etype, simdops.pmin, etype)

    def pmax(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Packed maximum."""
        self._packed_binop(f"pmax{etype.name}", OpClass.MEDIA_ALU, mmd, mma, mmb,
                           etype, simdops.pmax, etype)

    def pcmpeq(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Packed compare-equal (all-ones mask per matching lane)."""
        self._packed_binop(f"pcmpeq{etype.name}", OpClass.MEDIA_ALU, mmd, mma, mmb,
                           etype, simdops.pcmpeq, etype)

    def pcmpgt(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Packed compare-greater-than (signed)."""
        self._packed_binop(f"pcmpgt{etype.name}", OpClass.MEDIA_ALU, mmd, mma, mmb,
                           etype, simdops.pcmpgt, etype)

    # ------------------------------------------------------------------
    # packed logical and shifts
    # ------------------------------------------------------------------

    def pand(self, mmd: int, mma: int, mmb: int) -> None:
        """Bitwise AND of packed words."""
        result = simdops.pand(self.mm.read(mma), self.mm.read(mmb))
        self.mm.write(mmd, result)
        self._emit_media("pand", OpClass.MEDIA_ALU, (_ref_mm(mma), _ref_mm(mmb)),
                         (_ref_mm(mmd),), U8)

    def pandn(self, mmd: int, mma: int, mmb: int) -> None:
        """Bitwise AND-NOT (``~a & b``) of packed words."""
        result = simdops.pandn(self.mm.read(mma), self.mm.read(mmb))
        self.mm.write(mmd, result)
        self._emit_media("pandn", OpClass.MEDIA_ALU, (_ref_mm(mma), _ref_mm(mmb)),
                         (_ref_mm(mmd),), U8)

    def por(self, mmd: int, mma: int, mmb: int) -> None:
        """Bitwise OR of packed words."""
        result = simdops.por(self.mm.read(mma), self.mm.read(mmb))
        self.mm.write(mmd, result)
        self._emit_media("por", OpClass.MEDIA_ALU, (_ref_mm(mma), _ref_mm(mmb)),
                         (_ref_mm(mmd),), U8)

    def pxor(self, mmd: int, mma: int, mmb: int) -> None:
        """Bitwise exclusive OR of packed words."""
        result = simdops.pxor(self.mm.read(mma), self.mm.read(mmb))
        self.mm.write(mmd, result)
        self._emit_media("pxor", OpClass.MEDIA_ALU, (_ref_mm(mma), _ref_mm(mmb)),
                         (_ref_mm(mmd),), U8)

    def psll(self, mmd: int, mms: int, shift: int, etype: ElementType) -> None:
        """Packed shift left logical by an immediate."""
        self.mm.write(mmd, simdops.psll(self.mm.read(mms), shift, etype))
        self._emit_media(f"psll{etype.name}", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_mm(mmd),), etype)

    def psrl(self, mmd: int, mms: int, shift: int, etype: ElementType) -> None:
        """Packed shift right logical by an immediate."""
        self.mm.write(mmd, simdops.psrl(self.mm.read(mms), shift, etype))
        self._emit_media(f"psrl{etype.name}", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_mm(mmd),), etype)

    def psra(self, mmd: int, mms: int, shift: int, etype: ElementType) -> None:
        """Packed shift right arithmetic by an immediate."""
        self.mm.write(mmd, simdops.psra(self.mm.read(mms), shift, etype))
        self._emit_media(f"psra{etype.name}", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_mm(mmd),), etype)

    def pshift_scale(self, mmd: int, mms: int, shift: int, etype: ElementType,
                     saturating: str = "wrap") -> None:
        """Arithmetic right shift with round-half-up (descale) per lane."""
        self.mm.write(mmd, simdops.pshift_scale(self.mm.read(mms), shift, etype,
                                                saturating))
        self._emit_media("pscale", OpClass.MEDIA_MISC, (_ref_mm(mms),),
                         (_ref_mm(mmd),), etype)

    # ------------------------------------------------------------------
    # pack / unpack (data promotion)
    # ------------------------------------------------------------------

    def packss(self, mmd: int, mma: int, mmb: int, src_etype: ElementType) -> None:
        """Pack two wide-lane words into one narrow-lane word, signed saturation."""
        self._packed_binop(f"packss_{src_etype.name}", OpClass.MEDIA_MISC, mmd,
                           mma, mmb, src_etype, simdops.packss, src_etype)

    def packus(self, mmd: int, mma: int, mmb: int, src_etype: ElementType) -> None:
        """Pack with unsigned saturation."""
        self._packed_binop(f"packus_{src_etype.name}", OpClass.MEDIA_MISC, mmd,
                           mma, mmb, src_etype, simdops.packus, src_etype)

    def punpckl(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Interleave low halves (used for zero-extension / data promotion)."""
        self._packed_binop(f"punpckl_{etype.name}", OpClass.MEDIA_MISC, mmd,
                           mma, mmb, etype, simdops.punpckl, etype)

    def punpckh(self, mmd: int, mma: int, mmb: int, etype: ElementType) -> None:
        """Interleave high halves."""
        self._packed_binop(f"punpckh_{etype.name}", OpClass.MEDIA_MISC, mmd,
                           mma, mmb, etype, simdops.punpckh, etype)


class MDMXBuilder(MMXBuilder):
    """Builder for the MDMX-like extension: MMX plus packed accumulators.

    Accumulators are referred to by index (0–3).  Every accumulator-operate
    instruction reads and writes the accumulator (the architectural
    recurrence); the read-out instructions round/clip into an ordinary
    multimedia register or a scalar register.
    """

    isa_name = "mdmx"

    def __init__(self, machine, trace=None, name: str = "") -> None:
        super().__init__(machine, trace, name)
        self.accs = machine.mdmx_accs

    # ------------------------------------------------------------------

    def _emit_acc(self, opcode: str, srcs, dsts, etype: ElementType,
                  ops: int | None = None) -> None:
        self._emit(
            opcode,
            OpClass.MEDIA_ACC,
            srcs=srcs,
            dsts=dsts,
            ops=ops if ops is not None else etype.lanes,
            vlx=etype.lanes,
            vly=1,
            is_vector=True,
        )

    def acc_clear(self, acc: int, etype: ElementType = S16) -> None:
        """Zero an accumulator."""
        self.accs.clear(acc)
        self._emit_acc("acc_clear", (), (_ref_acc(acc),), etype, ops=1)

    def acc_madd(self, acc: int, mma: int, mmb: int, etype: ElementType = S16) -> None:
        """``acc += a * b`` lane-wise (multiply-accumulate)."""
        new = accum.acc_mul_add(self.accs.read(acc), self.mm.read(mma),
                                self.mm.read(mmb), etype)
        self.accs.write(acc, new)
        self._emit_acc(f"acc_madd{etype.name}",
                       (_ref_mm(mma), _ref_mm(mmb), _ref_acc(acc)),
                       (_ref_acc(acc),), etype)

    def acc_msub(self, acc: int, mma: int, mmb: int, etype: ElementType = S16) -> None:
        """``acc -= a * b`` lane-wise."""
        new = accum.acc_mul_sub(self.accs.read(acc), self.mm.read(mma),
                                self.mm.read(mmb), etype)
        self.accs.write(acc, new)
        self._emit_acc(f"acc_msub{etype.name}",
                       (_ref_mm(mma), _ref_mm(mmb), _ref_acc(acc)),
                       (_ref_acc(acc),), etype)

    def acc_add(self, acc: int, mma: int, etype: ElementType = S16) -> None:
        """``acc += a`` lane-wise."""
        new = accum.acc_add(self.accs.read(acc), self.mm.read(mma), etype)
        self.accs.write(acc, new)
        self._emit_acc(f"acc_add{etype.name}", (_ref_mm(mma), _ref_acc(acc)),
                       (_ref_acc(acc),), etype)

    def acc_sub(self, acc: int, mma: int, etype: ElementType = S16) -> None:
        """``acc -= a`` lane-wise."""
        new = accum.acc_sub(self.accs.read(acc), self.mm.read(mma), etype)
        self.accs.write(acc, new)
        self._emit_acc(f"acc_sub{etype.name}", (_ref_mm(mma), _ref_acc(acc)),
                       (_ref_acc(acc),), etype)

    def acc_absdiff(self, acc: int, mma: int, mmb: int,
                    etype: ElementType = U8) -> None:
        """``acc += |a - b|`` lane-wise (motion-estimation primitive)."""
        new = accum.acc_abs_diff_add(self.accs.read(acc), self.mm.read(mma),
                                     self.mm.read(mmb), etype)
        self.accs.write(acc, new)
        self._emit_acc(f"acc_absdiff{etype.name}",
                       (_ref_mm(mma), _ref_mm(mmb), _ref_acc(acc)),
                       (_ref_acc(acc),), etype)

    def acc_read(self, mmd: int, acc: int, etype: ElementType, shift: int = 0,
                 rounding: bool = True, saturating: bool = True) -> None:
        """Round/clip the accumulator into a multimedia register."""
        word = accum.acc_read(self.accs.read(acc), etype, shift, rounding, saturating)
        self.mm.write(mmd, word)
        self._emit_acc("acc_read", (_ref_acc(acc),), (_ref_mm(mmd),), etype)

    def acc_read_scalar(self, rd: int, acc: int, etype: ElementType,
                        shift: int = 0) -> None:
        """Sum all accumulator lanes into a scalar register (final reduction)."""
        total = accum.acc_read_scalar(self.accs.read(acc), etype.lanes, shift)
        self.regs.write(rd, total)
        self._emit_acc("acc_read_scalar", (_ref_acc(acc),), (_ref_int(rd),), etype)
