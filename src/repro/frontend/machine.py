"""Functional machine state: memory plus all architectural register files."""

from __future__ import annotations

import numpy as np

from repro.common.datatypes import ElementType, WORD_MASK
from repro.isa.registers import (
    AccumulatorFile,
    MatrixRegisterFile,
    MultimediaRegisterFile,
    ScalarRegisterFile,
    VectorControl,
    MAX_MATRIX_ROWS,
)

__all__ = ["Memory", "FunctionalMachine"]


class Memory:
    """Byte-addressable little-endian memory with a bump allocator.

    The size defaults to 4 MiB, comfortably larger than any kernel working
    set in this reproduction.  Addresses are plain Python ints.
    """

    def __init__(self, size: int = 4 << 20) -> None:
        self.size = size
        self._data = bytearray(size)
        self._brk = 64  # keep address 0 unused to catch null-pointer bugs

    # -- allocation -------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` of memory and return its base address."""
        addr = (self._brk + align - 1) // align * align
        new_brk = addr + nbytes
        if new_brk > self.size:
            raise MemoryError(
                f"functional memory exhausted ({new_brk} > {self.size} bytes)"
            )
        self._brk = new_brk
        return addr

    # -- raw access -------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        if addr < 0 or addr + nbytes > self.size:
            raise IndexError(f"memory access out of range: [{addr}, {addr + nbytes})")

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, nbytes)
        return bytes(self._data[addr : addr + nbytes])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = data

    # -- typed access -----------------------------------------------------

    def read_uint(self, addr: int, nbytes: int) -> int:
        return int.from_bytes(self.read_bytes(addr, nbytes), "little")

    def read_sint(self, addr: int, nbytes: int) -> int:
        return int.from_bytes(self.read_bytes(addr, nbytes), "little", signed=True)

    def write_uint(self, addr: int, value: int, nbytes: int) -> None:
        mask = (1 << (8 * nbytes)) - 1
        self.write_bytes(addr, (int(value) & mask).to_bytes(nbytes, "little"))

    # -- NumPy array helpers (workload setup / result extraction) ---------

    def write_array(self, addr: int, array: np.ndarray, etype: ElementType) -> None:
        """Write a NumPy array of lane values at ``addr`` in row-major order."""
        flat = np.asarray(array).reshape(-1)
        nbytes = etype.bits // 8
        mask = etype.mask
        buf = bytearray(len(flat) * nbytes)
        for i, value in enumerate(flat):
            buf[i * nbytes : (i + 1) * nbytes] = (int(value) & mask).to_bytes(
                nbytes, "little"
            )
        self.write_bytes(addr, bytes(buf))

    def read_array(self, addr: int, count: int, etype: ElementType) -> np.ndarray:
        """Read ``count`` elements of ``etype`` starting at ``addr``."""
        nbytes = etype.bits // 8
        raw = self.read_bytes(addr, count * nbytes)
        out = np.empty(count, dtype=np.int64)
        sign_bit = 1 << (etype.bits - 1)
        for i in range(count):
            value = int.from_bytes(raw[i * nbytes : (i + 1) * nbytes], "little")
            if etype.signed and value & sign_bit:
                value -= 1 << etype.bits
            out[i] = value
        return out

    def alloc_array(self, array: np.ndarray, etype: ElementType, align: int = 64) -> int:
        """Allocate space for ``array`` and write it; returns the address."""
        flat = np.asarray(array).reshape(-1)
        addr = self.alloc(flat.size * (etype.bits // 8), align)
        self.write_array(addr, flat, etype)
        return addr

    def alloc_zeros(self, count: int, etype: ElementType, align: int = 64) -> int:
        """Allocate a zero-filled array of ``count`` elements of ``etype``."""
        return self.alloc(count * (etype.bits // 8), align)


class FunctionalMachine:
    """All architectural state shared by the four ISA models.

    The register-file sizes follow the paper's "enhanced" ISA models
    (section 4.1): 32 multimedia registers (MMX/MDMX), 4 MDMX accumulators,
    16 MOM matrix registers, 2 MOM accumulators and one vector-length
    register.
    """

    def __init__(self, mem_size: int = 4 << 20) -> None:
        self.memory = Memory(mem_size)
        self.int_regs = ScalarRegisterFile(32)
        self.media_regs = MultimediaRegisterFile(32)
        self.mdmx_accs = AccumulatorFile(num_accs=4, lanes=8)
        self.matrix_regs = MatrixRegisterFile(num_regs=16, rows=MAX_MATRIX_ROWS)
        self.mom_accs = AccumulatorFile(num_accs=2, lanes=8)
        self.vector_control = VectorControl(MAX_MATRIX_ROWS)

    # Convenience passthroughs -------------------------------------------

    def alloc_array(self, array: np.ndarray, etype: ElementType, align: int = 64) -> int:
        return self.memory.alloc_array(array, etype, align)

    def alloc_zeros(self, count: int, etype: ElementType, align: int = 64) -> int:
        return self.memory.alloc_zeros(count, etype, align)

    def read_array(self, addr: int, count: int, etype: ElementType) -> np.ndarray:
        return self.memory.read_array(addr, count, etype)

    def read_media_word(self, index: int) -> int:
        return self.media_regs.read(index) & WORD_MASK
