"""Functional machine state: memory plus all architectural register files."""

from __future__ import annotations

import numpy as np

from repro.common.datatypes import ElementType, WORD_MASK
from repro.isa.registers import (
    AccumulatorFile,
    MatrixRegisterFile,
    MultimediaRegisterFile,
    ScalarRegisterFile,
    VectorControl,
    MAX_MATRIX_ROWS,
)

__all__ = ["Memory", "FunctionalMachine"]


def _lane_dtype(etype: ElementType) -> np.dtype:
    """Little-endian NumPy dtype matching one packed lane of ``etype``."""
    return np.dtype(f"<{'i' if etype.signed else 'u'}{etype.bits // 8}")


class Memory:
    """Byte-addressable little-endian memory with a bump allocator.

    The size defaults to 4 MiB, comfortably larger than any kernel working
    set in this reproduction.  Addresses are plain Python ints.

    Storage is one ``bytearray``; scalar accesses (the per-instruction
    loads and stores of the functional builders) slice it directly, while
    the array helpers below go through a zero-copy NumPy ``uint8`` view of
    the same buffer — bulk workload setup and result extraction are single
    vectorised ``view``/``astype`` operations, not per-element Python
    loops.
    """

    #: Initial backing-store capacity.  ``size`` bounds the address space;
    #: the actual allocation starts here and doubles on first touch of a
    #: higher address, so constructing a machine does not pay for zeroing
    #: 4 MiB it will never use (kernel working sets are a few KiB).
    _INITIAL_CAPACITY = 1 << 16

    def __init__(self, size: int = 4 << 20) -> None:
        self.size = size
        self._data = bytearray(min(size, self._INITIAL_CAPACITY))
        #: NumPy view sharing the bytearray's buffer (writes through either
        #: are visible to both; the bytearray is replaced wholesale — never
        #: resized in place — when the store grows, and the view with it).
        self._view = np.frombuffer(self._data, dtype=np.uint8)
        self._brk = 64  # keep address 0 unused to catch null-pointer bugs

    # -- allocation -------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` of memory and return its base address."""
        addr = (self._brk + align - 1) // align * align
        new_brk = addr + nbytes
        if new_brk > self.size:
            raise MemoryError(
                f"functional memory exhausted ({new_brk} > {self.size} bytes)"
            )
        self._brk = new_brk
        return addr

    # -- raw access -------------------------------------------------------

    def _check(self, addr: int, nbytes: int) -> None:
        end = addr + nbytes
        if addr < 0 or end > self.size:
            raise IndexError(f"memory access out of range: [{addr}, {end})")
        if end > len(self._data):
            self._grow(end)

    def _grow(self, needed: int) -> None:
        """Double the backing store until it covers ``needed`` bytes.

        The final capacity depends only on the highest address touched
        (doubling from a fixed start), not on the access order, so two
        machines running the same kernel end up with byte-equal stores.
        """
        capacity = len(self._data)
        while capacity < needed:
            capacity *= 2
        capacity = min(capacity, self.size)
        data = bytearray(capacity)
        data[: len(self._data)] = self._data
        self._data = data
        self._view = np.frombuffer(self._data, dtype=np.uint8)

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._check(addr, nbytes)
        return bytes(self._data[addr : addr + nbytes])

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(addr, len(data))
        self._data[addr : addr + len(data)] = data

    # -- typed access -----------------------------------------------------

    def read_uint(self, addr: int, nbytes: int) -> int:
        return int.from_bytes(self.read_bytes(addr, nbytes), "little")

    def read_sint(self, addr: int, nbytes: int) -> int:
        return int.from_bytes(self.read_bytes(addr, nbytes), "little", signed=True)

    def write_uint(self, addr: int, value: int, nbytes: int) -> None:
        mask = (1 << (8 * nbytes)) - 1
        self.write_bytes(addr, (int(value) & mask).to_bytes(nbytes, "little"))

    # -- NumPy array helpers (workload setup / result extraction) ---------

    def write_array(self, addr: int, array: np.ndarray, etype: ElementType) -> None:
        """Write a NumPy array of lane values at ``addr`` in row-major order.

        Each lane value is truncated to the element width (two's
        complement, exactly ``int(value) & etype.mask``) and stored
        little-endian.  Integer-dtype inputs take one vectorised
        mask/astype/byte-view pass; ``object``-dtype arrays (arbitrary
        Python ints) fall back to the per-element loop.
        """
        flat = np.asarray(array).reshape(-1)
        nbytes = etype.bits // 8
        mask = etype.mask
        self._check(addr, flat.size * nbytes)
        if flat.dtype == object:
            buf = bytearray(flat.size * nbytes)
            for i, value in enumerate(flat):
                buf[i * nbytes : (i + 1) * nbytes] = (
                    int(value) & mask).to_bytes(nbytes, "little")
            self._data[addr : addr + len(buf)] = buf
            return
        lanes = (flat.astype(np.int64, copy=False) & np.int64(mask)).astype(
            _lane_dtype(etype))
        self._view[addr : addr + lanes.nbytes] = lanes.view(np.uint8)

    def read_array(self, addr: int, count: int, etype: ElementType) -> np.ndarray:
        """Read ``count`` elements of ``etype`` starting at ``addr``.

        One vectorised pass: the byte range is reinterpreted as the
        little-endian lane dtype (sign extension comes with the signed
        view) and widened to ``int64`` — no per-element Python loop.
        """
        nbytes = etype.bits // 8
        self._check(addr, count * nbytes)
        lanes = np.frombuffer(self._data, dtype=_lane_dtype(etype),
                              count=count, offset=addr)
        return lanes.astype(np.int64)

    def read_words_strided(self, addr: int, step: int, count: int) -> list[int]:
        """Read ``count`` little-endian 64-bit words, ``step`` bytes apart.

        The vectorised form of the MOM strided matrix load: one gather over
        the byte view instead of a Python loop of :meth:`read_uint` calls.
        """
        if count <= 0:
            return []
        self._check(addr, 8)
        self._check(addr + step * (count - 1), 8)
        if step == 8:
            rows = self._view[addr : addr + 8 * count]
        else:
            idx = (addr + step * np.arange(count))[:, None] + np.arange(8)
            rows = self._view[idx]
        return [int(w) for w in rows.reshape(count, 8).view("<u8").reshape(-1)]

    def write_words_strided(self, addr: int, step: int,
                            words: "list[int]") -> None:
        """Write 64-bit words at ``addr``, ``step`` bytes apart (strided store)."""
        count = len(words)
        if count <= 0:
            return
        self._check(addr, 8)
        self._check(addr + step * (count - 1), 8)
        rows = np.asarray(words, dtype="<u8").view(np.uint8).reshape(count, 8)
        if step == 8:
            self._view[addr : addr + 8 * count] = rows.reshape(-1)
        else:
            idx = (addr + step * np.arange(count))[:, None] + np.arange(8)
            self._view[idx] = rows

    def alloc_array(self, array: np.ndarray, etype: ElementType, align: int = 64) -> int:
        """Allocate space for ``array`` and write it; returns the address."""
        flat = np.asarray(array).reshape(-1)
        addr = self.alloc(flat.size * (etype.bits // 8), align)
        self.write_array(addr, flat, etype)
        return addr

    def alloc_zeros(self, count: int, etype: ElementType, align: int = 64) -> int:
        """Allocate a zero-filled array of ``count`` elements of ``etype``."""
        return self.alloc(count * (etype.bits // 8), align)


class FunctionalMachine:
    """All architectural state shared by the four ISA models.

    The register-file sizes follow the paper's "enhanced" ISA models
    (section 4.1): 32 multimedia registers (MMX/MDMX), 4 MDMX accumulators,
    16 MOM matrix registers, 2 MOM accumulators and one vector-length
    register.
    """

    def __init__(self, mem_size: int = 4 << 20) -> None:
        self.memory = Memory(mem_size)
        self.int_regs = ScalarRegisterFile(32)
        self.media_regs = MultimediaRegisterFile(32)
        self.mdmx_accs = AccumulatorFile(num_accs=4, lanes=8)
        self.matrix_regs = MatrixRegisterFile(num_regs=16, rows=MAX_MATRIX_ROWS)
        self.mom_accs = AccumulatorFile(num_accs=2, lanes=8)
        self.vector_control = VectorControl(MAX_MATRIX_ROWS)

    # Convenience passthroughs -------------------------------------------

    def alloc_array(self, array: np.ndarray, etype: ElementType, align: int = 64) -> int:
        return self.memory.alloc_array(array, etype, align)

    def alloc_zeros(self, count: int, etype: ElementType, align: int = 64) -> int:
        return self.memory.alloc_zeros(count, etype, align)

    def read_array(self, addr: int, count: int, etype: ElementType) -> np.ndarray:
        return self.memory.read_array(addr, count, etype)

    def read_media_word(self, index: int) -> int:
        return self.media_regs.read(index) & WORD_MASK
