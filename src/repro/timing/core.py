"""Interval-style out-of-order core model.

Instructions from a trace are processed in program order; for each one the
model computes

* ``rename`` time — bounded by in-order fetch/rename bandwidth, ROB space,
  issue-queue space in the instruction's domain and rename head-room of each
  destination register file;
* ``ready`` time — the dataflow constraint (all source registers ready);
* ``issue`` time — bounded by a free functional unit / memory port, issue
  bandwidth and the ready time;
* ``complete`` time — issue + execution latency + (occupancy - 1) for
  multi-cycle vector/matrix instructions;
* ``commit`` time — in-order, bounded by commit bandwidth.

This is the standard interval approximation of an out-of-order pipeline: it
captures dataflow ILP, structural hazards and the latency-hiding ability of
the instruction window without a cycle-by-cycle event loop, which keeps the
pure-Python model fast enough to sweep the paper's full parameter space.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Optional, Union

from repro.isa.opclasses import OpClass, RegFile
from repro.timing.config import MachineConfig
from repro.timing.lowered import REG_POOL_ORDER, LoweredTrace
from repro.timing.resources import BandwidthLimiter, FunctionalUnitPool, SlotPool
from repro.timing.results import SimResult
from repro.trace.container import Trace
from repro.trace.instruction import RegRef

__all__ = ["MODEL_VERSION", "VL_RENAME_SLOTS", "OutOfOrderCore",
           "completion_latency", "occupancy_of", "simulate_trace"]

#: Version tag of the timing model's *numbers*.  Bump whenever a change can
#: alter simulated cycle counts for any trace/configuration — the sweep
#: result cache folds this into every key, so a bump invalidates all cached
#: results.  Pure-performance refactors that preserve the numbers (checked
#: by tests/test_golden_regression.py) must NOT bump it.
MODEL_VERSION = "1"

#: Rename slots of the vector-length register's tiny pool (it is never a
#: bottleneck, but the dependence handling stays uniform).  Shared by the
#: object loop, the lowered interpreter and the vector batch backend so
#: the three can never drift.
VL_RENAME_SLOTS = 8


# Domain names used for issue queues.
_DOMAIN_INT = "int"
_DOMAIN_MEM = "mem"
_DOMAIN_MEDIA = "media"


def _domain_of(opclass: OpClass) -> str:
    if opclass.is_memory:
        return _DOMAIN_MEM
    if opclass.is_media:
        return _DOMAIN_MEDIA
    return _DOMAIN_INT


def occupancy_of(config: MachineConfig, opclass: OpClass, vly: int,
                 non_pipelined: bool) -> int:
    """Cycles an instruction shape occupies its functional unit or port.

    Pure function of ``(config, shape)``; shared by the object loop, the
    lowered backend's per-shape resolution and the vector batch backend's
    per-(shape, config) tables, so the three can never drift apart.
    """
    if non_pipelined:
        # Non-pipelined matrix ops (transpose) hold the unit for their
        # whole latency.
        return config.latency_of(opclass)
    if opclass.is_memory:
        if vly > 1:
            return math.ceil(vly / config.mem_port_width)
        return 1
    if opclass.is_media and vly > 1:
        return math.ceil(vly / config.media_lanes)
    return 1


def completion_latency(config: MachineConfig, opclass: OpClass, vly: int,
                       occupancy: int) -> int:
    """Cycles from issue to result availability (see :func:`occupancy_of`)."""
    base = config.latency_of(opclass)
    if opclass.is_store:
        return 1
    latency = base + (occupancy - 1)
    if opclass is OpClass.MEDIA_ACC and vly > 1:
        # MOM pipelined dimension-Y reduction: extra fixed latency for the
        # reduction tree (paper section 3.1).
        latency += config.mom_reduction_latency
    return latency


class OutOfOrderCore:
    """One simulated out-of-order core instance.

    A core instance is single-use: create one per (trace, configuration)
    pair, or use the :func:`simulate_trace` convenience wrapper.  A second
    :meth:`run`/:meth:`run_lowered` call on the same instance raises —
    resource scoreboards and stall counters carry state from the first run,
    so reuse would silently corrupt the results.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self._used = False

        # Functional units.
        self._int_alu = FunctionalUnitPool("ialu", config.num_int_alu)
        self._int_mul = FunctionalUnitPool("imul", config.num_int_mul)
        self._mem_ports = FunctionalUnitPool("mem", config.num_mem_ports)
        self._media_fu = FunctionalUnitPool("media", config.num_media_fu)

        # Bandwidth.
        self._issue_bw = BandwidthLimiter(config.issue_width)

        # Issue queues.
        self._queues = {
            _DOMAIN_INT: SlotPool("intq", config.int_queue_size),
            _DOMAIN_MEM: SlotPool("memq", config.mem_queue_size),
            _DOMAIN_MEDIA: SlotPool("mediaq", config.media_queue_size),
        }

        # Rename head-room per register file (physical minus architectural).
        self._rename_pools = {
            RegFile.INT: SlotPool(
                "int-regs", config.phys_int_regs - config.arch_int_regs
            ),
            RegFile.MEDIA: SlotPool(
                "media-regs", config.phys_media_regs - config.arch_media_regs
            ),
            RegFile.MATRIX: SlotPool(
                "matrix-regs", config.phys_matrix_regs - config.arch_matrix_regs
            ),
            RegFile.ACC: SlotPool(
                "acc-regs", config.phys_acc_regs - config.arch_acc_regs
            ),
            RegFile.VL: SlotPool("vl-regs", VL_RENAME_SLOTS),
        }

        # Fast-path lookup tables: functional-unit pool and issue queue per
        # operation class.  Both are pure functions of the opclass, so
        # resolving them once here removes two chains of enum-property
        # checks (`is_memory`, `is_media`, ...) from the per-instruction
        # simulation loop.
        self._fu_by_class: Dict[OpClass, FunctionalUnitPool] = {}
        self._queue_by_class: Dict[OpClass, SlotPool] = {}
        for opclass in OpClass:
            if opclass.is_memory:
                fu = self._mem_ports
            elif opclass is OpClass.IMUL:
                fu = self._int_mul
            elif opclass.is_media:
                fu = self._media_fu
            else:
                fu = self._int_alu
            self._fu_by_class[opclass] = fu
            self._queue_by_class[opclass] = self._queues[_domain_of(opclass)]

        # Register readiness (architectural registers all ready at cycle 0).
        self._reg_ready: Dict[RegRef, int] = {}

        # Per-instruction pipeline times (ring buffers would do; lists are
        # simpler and the traces are modest).
        self._rename_times: list[int] = []
        self._commit_times: list[int] = []

        self._stalls: Dict[str, int] = {
            "rob": 0,
            "issue_queue": 0,
            "rename_regs": 0,
            "fetch_bw": 0,
        }

    # ------------------------------------------------------------------

    def _occupancy_of(self, opclass: OpClass, vly: int,
                      non_pipelined: bool) -> int:
        """Cycles an instruction shape occupies its functional unit or port."""
        return occupancy_of(self.config, opclass, vly, non_pipelined)

    def _completion_latency(self, opclass: OpClass, vly: int,
                            occupancy: int) -> int:
        """Cycles from issue to result availability."""
        return completion_latency(self.config, opclass, vly, occupancy)

    def _mark_used(self) -> None:
        if self._used:
            raise RuntimeError(
                "OutOfOrderCore instances are single-use: resource "
                "scoreboards and stall counters carry state from the first "
                "run; create a fresh core (or call simulate_trace) per "
                "(trace, configuration) pair")
        self._used = True

    # ------------------------------------------------------------------

    def run(self, trace: Trace, record_timeline: bool = False) -> SimResult:
        """Simulate ``trace`` and return the timing result.

        With ``record_timeline`` the per-instruction pipeline times are kept
        in :attr:`timeline` as ``(opcode, rename, ready, issue, complete,
        commit)`` tuples — useful for debugging and for the micro-level unit
        tests of the timing model.

        This is the object-level reference loop; :meth:`run_lowered` executes
        the same interval model over a pre-compiled
        :class:`~repro.timing.lowered.LoweredTrace` at a multiple of the
        speed, with bit-identical cycle counts.
        """
        self._mark_used()
        cfg = self.config
        rename_times = self._rename_times
        commit_times = self._commit_times
        reg_ready = self._reg_ready
        self.timeline: list[tuple] = []

        # The loop below is the simulator's hot path (it runs once per
        # dynamic instruction across every sweep point), so everything
        # loop-invariant is hoisted into locals: configuration fields,
        # bound methods, the per-opclass lookup tables, and the stall
        # counters (plain ints here, written back to the dict at the end).
        fetch_width = cfg.fetch_width
        rob_size = cfg.rob_size
        commit_width = cfg.commit_width
        fu_by_class = self._fu_by_class
        queue_by_class = self._queue_by_class
        rename_pools_get = self._rename_pools.get
        reg_ready_get = reg_ready.get
        bw_probe = self._issue_bw.probe
        bw_next_slot = self._issue_bw.next_slot
        rename_append = rename_times.append
        commit_append = commit_times.append
        timeline_append = self.timeline.append
        media_acc = OpClass.MEDIA_ACC
        acc_file = RegFile.ACC

        stalls = self._stalls
        stall_fetch_bw = stalls["fetch_bw"]
        stall_rob = stalls["rob"]
        stall_queue = stalls["issue_queue"]
        stall_rename = stalls["rename_regs"]

        # (occupancy, completion latency) per (opclass, vly, non_pipelined):
        # both are pure functions of that triple for a fixed configuration,
        # so each distinct shape is computed once per core instead of once
        # per instruction.
        op_timing: dict = {}

        total_ops = 0
        last_commit = 0

        for i, instr in enumerate(trace):
            total_ops += instr.ops
            opclass = instr.opclass
            dsts = instr.dsts

            # ---- rename ------------------------------------------------
            candidate = rename_times[-1] if rename_times else 0
            if i >= fetch_width:
                bw_bound = rename_times[i - fetch_width] + 1
                if bw_bound > candidate:
                    stall_fetch_bw += bw_bound - candidate
                    candidate = bw_bound
            if i >= rob_size:
                rob_bound = commit_times[i - rob_size]
                if rob_bound > candidate:
                    stall_rob += rob_bound - candidate
                    candidate = rob_bound

            queue = queue_by_class[opclass]
            q_bound = queue.constrain(candidate)
            if q_bound > candidate:
                stall_queue += q_bound - candidate
                candidate = q_bound

            for dst in dsts:
                pool = rename_pools_get(dst.file)
                if pool is None:
                    continue
                r_bound = pool.constrain(candidate)
                if r_bound > candidate:
                    stall_rename += r_bound - candidate
                    candidate = r_bound

            rename_time = candidate
            rename_append(rename_time)

            # ---- ready (dataflow) ---------------------------------------
            ready = rename_time + 1
            for src in instr.srcs:
                t = reg_ready_get(src, 0)
                if t > ready:
                    ready = t

            # ---- issue ---------------------------------------------------
            # The instruction needs a functional unit (or memory port) for its
            # whole occupancy window and one issue slot in the start cycle;
            # iterate to a fixed point that satisfies both.
            timing = op_timing.get((opclass, instr.vly, instr.non_pipelined))
            if timing is None:
                occupancy = self._occupancy_of(opclass, instr.vly,
                                               instr.non_pipelined)
                timing = (occupancy,
                          self._completion_latency(opclass, instr.vly,
                                                   occupancy))
                op_timing[(opclass, instr.vly, instr.non_pipelined)] = timing
            occupancy, latency = timing

            fu = fu_by_class[opclass]
            fu_find_start = fu.find_start
            start = ready
            while True:
                fu_start = fu_find_start(start, occupancy)
                bw_start = bw_probe(fu_start)
                if bw_start == fu_start:
                    issue_time = fu_start
                    break
                start = bw_start
            fu.reserve(issue_time, occupancy)
            bw_next_slot(issue_time)
            queue.occupy(issue_time)

            # ---- complete ------------------------------------------------
            complete = issue_time + latency
            if opclass is media_acc and instr.vly <= 1:
                # MDMX-style accumulate: the accumulator feedback path lives in
                # the final adder stage, so a dependent accumulate can issue the
                # next cycle even though the full result (as read out into an
                # ordinary register) takes the whole latency.  This is the
                # "artificial recurrence" of section 3.1 at its real cost of
                # one cycle per accumulate.
                acc_forward = issue_time + occupancy
                for dst in dsts:
                    reg_ready[dst] = acc_forward if dst.file is acc_file else complete
            else:
                for dst in dsts:
                    reg_ready[dst] = complete

            # ---- commit --------------------------------------------------
            commit = complete + 1
            if commit_times:
                prev_commit = commit_times[-1]
                if prev_commit > commit:
                    commit = prev_commit
            if i >= commit_width:
                cw_bound = commit_times[i - commit_width] + 1
                if cw_bound > commit:
                    commit = cw_bound
            commit_append(commit)
            last_commit = commit

            for dst in dsts:
                pool = rename_pools_get(dst.file)
                if pool is not None:
                    pool.occupy(commit)

            if record_timeline:
                timeline_append(
                    (instr.opcode, rename_time, ready, issue_time, complete, commit)
                )

        stalls["fetch_bw"] = stall_fetch_bw
        stalls["rob"] = stall_rob
        stalls["issue_queue"] = stall_queue
        stalls["rename_regs"] = stall_rename

        return SimResult(
            cycles=last_commit,
            instructions=len(trace),
            operations=total_ops,
            kernel=trace.name,
            isa=trace.isa,
            config_name=cfg.name,
            mem_latency=cfg.mem_latency,
            issue_width=cfg.issue_width,
            stall_breakdown=dict(self._stalls),
        )

    # ------------------------------------------------------------------

    def run_lowered(self, lowered: LoweredTrace,
                    record_timeline: bool = False) -> SimResult:
        """Simulate a pre-lowered trace; bit-identical to :meth:`run`.

        The interval model is the same, but every per-instruction cost the
        object loop pays is gone: instructions are rows of flat arrays,
        register scoreboards are lists indexed by dense integer ids, the
        ``(occupancy, latency, functional unit, issue queue)`` resolution
        happens once per *shape*, and the resource trackers
        (:class:`~repro.timing.resources.FunctionalUnitPool`,
        :class:`~repro.timing.resources.BandwidthLimiter`,
        :class:`~repro.timing.resources.SlotPool`) are inlined as raw
        dicts/heaps local to the loop.  The inlined semantics are pinned to
        the object implementations by the golden snapshots and the
        equivalence suite in ``tests/timing/test_lowered.py``.
        """
        self._mark_used()
        cfg = self.config
        self.timeline: list[tuple] = []

        # --- per-configuration shape resolution --------------------------
        # Functional-unit scoreboards: {cycle: units busy} + unit count, in
        # the same grouping as self._fu_by_class (int ALU, int mul, memory
        # ports, media units).
        fu_states = (
            ({}, cfg.num_int_alu),
            ({}, cfg.num_int_mul),
            ({}, cfg.num_mem_ports),
            ({}, cfg.num_media_fu),
        )
        # Issue queues and rename pools as (min-heap of release times,
        # capacity) pairs — SlotPool semantics, inlined.  Capacities clamp at
        # zero exactly like SlotPool (zero = unconstrained).
        queue_states = (
            ([], max(0, cfg.int_queue_size)),
            ([], max(0, cfg.mem_queue_size)),
            ([], max(0, cfg.media_queue_size)),
        )
        rename_caps = {
            RegFile.INT: cfg.phys_int_regs - cfg.arch_int_regs,
            RegFile.MEDIA: cfg.phys_media_regs - cfg.arch_media_regs,
            RegFile.MATRIX: cfg.phys_matrix_regs - cfg.arch_matrix_regs,
            RegFile.ACC: cfg.phys_acc_regs - cfg.arch_acc_regs,
            RegFile.VL: VL_RENAME_SLOTS,
        }
        rename_heaps = tuple([] for _ in REG_POOL_ORDER)
        rename_capacities = tuple(max(0, rename_caps[file])
                                  for file in REG_POOL_ORDER)

        media_acc = OpClass.MEDIA_ACC
        resolved = []
        for opclass, vly, non_pipelined in lowered.shapes:
            occupancy = self._occupancy_of(opclass, vly, non_pipelined)
            latency = self._completion_latency(opclass, vly, occupancy)
            if opclass.is_memory:
                fu_busy, fu_count = fu_states[2]
                queue_heap, queue_cap = queue_states[1]
            elif opclass is OpClass.IMUL:
                fu_busy, fu_count = fu_states[1]
                queue_heap, queue_cap = queue_states[0]
            elif opclass.is_media:
                fu_busy, fu_count = fu_states[3]
                queue_heap, queue_cap = queue_states[2]
            else:
                fu_busy, fu_count = fu_states[0]
                queue_heap, queue_cap = queue_states[0]
            acc_forwarding = opclass is media_acc and vly <= 1
            resolved.append((occupancy, latency, fu_busy, fu_busy.get,
                             fu_count, queue_heap, queue_cap, acc_forwarding))

        # --- hot-loop locals ---------------------------------------------
        fetch_width = cfg.fetch_width
        rob_size = cfg.rob_size
        commit_width = cfg.commit_width
        bw_width = cfg.issue_width
        bw_used: Dict[int, int] = {}
        bw_get = bw_used.get
        reg_ready = [0] * lowered.num_regs
        rename_times: list = []
        commit_times: list = []
        rename_append = rename_times.append
        commit_append = commit_times.append
        timeline_append = self.timeline.append
        heappush_ = heappush
        heappop_ = heappop
        opcodes = lowered.opcodes
        opcode_ids = lowered.opcode_ids

        stalls = self._stalls
        stall_fetch_bw = stalls["fetch_bw"]
        stall_rob = stalls["rob"]
        stall_queue = stalls["issue_queue"]
        stall_rename = stalls["rename_regs"]

        last_commit = 0

        for i, (sid, srcs, dsts) in enumerate(
                zip(lowered.shape_ids, lowered.srcs, lowered.dsts)):
            (occupancy, latency, fu_busy, fu_get, fu_count,
             queue_heap, queue_cap, acc_forwarding) = resolved[sid]

            # ---- rename ------------------------------------------------
            candidate = rename_times[-1] if rename_times else 0
            if i >= fetch_width:
                bw_bound = rename_times[i - fetch_width] + 1
                if bw_bound > candidate:
                    stall_fetch_bw += bw_bound - candidate
                    candidate = bw_bound
            if i >= rob_size:
                rob_bound = commit_times[i - rob_size]
                if rob_bound > candidate:
                    stall_rob += rob_bound - candidate
                    candidate = rob_bound

            if queue_cap:
                while queue_heap and queue_heap[0] <= candidate:
                    heappop_(queue_heap)
                if len(queue_heap) >= queue_cap:
                    # The release loop drained everything <= candidate, so
                    # the evicted earliest leaver is strictly later.
                    earliest = heappop_(queue_heap)
                    stall_queue += earliest - candidate
                    candidate = earliest

            for _reg, pool_i, _is_acc in dsts:
                cap = rename_capacities[pool_i]
                if cap == 0:
                    continue
                heap = rename_heaps[pool_i]
                while heap and heap[0] <= candidate:
                    heappop_(heap)
                if len(heap) >= cap:
                    earliest = heappop_(heap)
                    stall_rename += earliest - candidate
                    candidate = earliest

            rename_time = candidate
            rename_append(rename_time)

            # ---- ready (dataflow) ---------------------------------------
            ready = rename_time + 1
            for r in srcs:
                t = reg_ready[r]
                if t > ready:
                    ready = t

            # ---- issue ---------------------------------------------------
            # A functional unit for the whole occupancy window plus one
            # issue slot in the start cycle; iterate to a fixed point.
            start = ready
            if occupancy == 1:
                while True:
                    while fu_get(start, 0) >= fu_count:
                        start += 1
                    bw_start = start
                    while bw_get(bw_start, 0) >= bw_width:
                        bw_start += 1
                    if bw_start == start:
                        issue_time = start
                        break
                    start = bw_start
                fu_busy[issue_time] = fu_get(issue_time, 0) + 1
            else:
                while True:
                    fu_start = start
                    while True:
                        conflict = -1
                        for cycle in range(fu_start, fu_start + occupancy):
                            if fu_get(cycle, 0) >= fu_count:
                                conflict = cycle
                                break
                        if conflict < 0:
                            break
                        fu_start = conflict + 1
                    bw_start = fu_start
                    while bw_get(bw_start, 0) >= bw_width:
                        bw_start += 1
                    if bw_start == fu_start:
                        issue_time = fu_start
                        break
                    start = bw_start
                for cycle in range(issue_time, issue_time + occupancy):
                    fu_busy[cycle] = fu_get(cycle, 0) + 1
            bw_used[issue_time] = bw_get(issue_time, 0) + 1
            if queue_cap:
                heappush_(queue_heap, issue_time)

            # ---- complete ------------------------------------------------
            complete = issue_time + latency
            if acc_forwarding:
                # MDMX-style accumulate: the accumulator feedback path lives
                # in the final adder stage (see run() for the full story).
                acc_forward = issue_time + occupancy
                for reg, _pool_i, is_acc in dsts:
                    reg_ready[reg] = acc_forward if is_acc else complete
            else:
                for reg, _pool_i, _is_acc in dsts:
                    reg_ready[reg] = complete

            # ---- commit --------------------------------------------------
            commit = complete + 1
            if commit_times:
                prev_commit = commit_times[-1]
                if prev_commit > commit:
                    commit = prev_commit
            if i >= commit_width:
                cw_bound = commit_times[i - commit_width] + 1
                if cw_bound > commit:
                    commit = cw_bound
            commit_append(commit)
            last_commit = commit

            for _reg, pool_i, _is_acc in dsts:
                if rename_capacities[pool_i]:
                    heappush_(rename_heaps[pool_i], commit)

            if record_timeline:
                timeline_append((opcodes[opcode_ids[i]], rename_time, ready,
                                 issue_time, complete, commit))

        stalls["fetch_bw"] = stall_fetch_bw
        stalls["rob"] = stall_rob
        stalls["issue_queue"] = stall_queue
        stalls["rename_regs"] = stall_rename

        return SimResult(
            cycles=last_commit,
            instructions=lowered.num_instructions,
            operations=lowered.total_ops,
            kernel=lowered.name,
            isa=lowered.isa,
            config_name=cfg.name,
            mem_latency=cfg.mem_latency,
            issue_width=cfg.issue_width,
            stall_breakdown=dict(self._stalls),
        )


def simulate_trace(trace: Union[Trace, LoweredTrace],
                   config: Optional[MachineConfig] = None) -> SimResult:
    """Simulate a trace on a (fresh) out-of-order core.

    The trace is lowered (once — :meth:`Trace.lower` memoises) and executed
    through the flat-array backend; an already-lowered trace is accepted
    directly, which is what the sweep engine's batching does to amortise
    lowering across every configuration sharing a trace.

    Parameters
    ----------
    trace:
        Dynamic instruction trace produced by a kernel builder, or its
        pre-compiled :class:`~repro.timing.lowered.LoweredTrace`.
    config:
        Machine configuration; defaults to the paper's 4-way core with
        1-cycle memory latency.
    """
    if config is None:
        config = MachineConfig.for_way(4)
    core = OutOfOrderCore(config)
    if isinstance(trace, LoweredTrace):
        return core.run_lowered(trace)
    return core.run_lowered(trace.lower())
