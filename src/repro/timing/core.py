"""Interval-style out-of-order core model.

Instructions from a trace are processed in program order; for each one the
model computes

* ``rename`` time — bounded by in-order fetch/rename bandwidth, ROB space,
  issue-queue space in the instruction's domain and rename head-room of each
  destination register file;
* ``ready`` time — the dataflow constraint (all source registers ready);
* ``issue`` time — bounded by a free functional unit / memory port, issue
  bandwidth and the ready time;
* ``complete`` time — issue + execution latency + (occupancy - 1) for
  multi-cycle vector/matrix instructions;
* ``commit`` time — in-order, bounded by commit bandwidth.

This is the standard interval approximation of an out-of-order pipeline: it
captures dataflow ILP, structural hazards and the latency-hiding ability of
the instruction window without a cycle-by-cycle event loop, which keeps the
pure-Python model fast enough to sweep the paper's full parameter space.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.isa.opclasses import OpClass, RegFile
from repro.timing.config import MachineConfig
from repro.timing.resources import BandwidthLimiter, FunctionalUnitPool, SlotPool
from repro.timing.results import SimResult
from repro.trace.container import Trace
from repro.trace.instruction import DynInstr, RegRef

__all__ = ["MODEL_VERSION", "OutOfOrderCore", "simulate_trace"]

#: Version tag of the timing model's *numbers*.  Bump whenever a change can
#: alter simulated cycle counts for any trace/configuration — the sweep
#: result cache folds this into every key, so a bump invalidates all cached
#: results.  Pure-performance refactors that preserve the numbers (checked
#: by tests/test_golden_regression.py) must NOT bump it.
MODEL_VERSION = "1"


# Domain names used for issue queues.
_DOMAIN_INT = "int"
_DOMAIN_MEM = "mem"
_DOMAIN_MEDIA = "media"


def _domain_of(opclass: OpClass) -> str:
    if opclass.is_memory:
        return _DOMAIN_MEM
    if opclass.is_media:
        return _DOMAIN_MEDIA
    return _DOMAIN_INT


class OutOfOrderCore:
    """One simulated out-of-order core instance.

    A core instance is single-use: create one per (trace, configuration)
    pair, or use the :func:`simulate_trace` convenience wrapper.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

        # Functional units.
        self._int_alu = FunctionalUnitPool("ialu", config.num_int_alu)
        self._int_mul = FunctionalUnitPool("imul", config.num_int_mul)
        self._mem_ports = FunctionalUnitPool("mem", config.num_mem_ports)
        self._media_fu = FunctionalUnitPool("media", config.num_media_fu)

        # Bandwidth.
        self._issue_bw = BandwidthLimiter(config.issue_width)

        # Issue queues.
        self._queues = {
            _DOMAIN_INT: SlotPool("intq", config.int_queue_size),
            _DOMAIN_MEM: SlotPool("memq", config.mem_queue_size),
            _DOMAIN_MEDIA: SlotPool("mediaq", config.media_queue_size),
        }

        # Rename head-room per register file (physical minus architectural).
        self._rename_pools = {
            RegFile.INT: SlotPool(
                "int-regs", config.phys_int_regs - config.arch_int_regs
            ),
            RegFile.MEDIA: SlotPool(
                "media-regs", config.phys_media_regs - config.arch_media_regs
            ),
            RegFile.MATRIX: SlotPool(
                "matrix-regs", config.phys_matrix_regs - config.arch_matrix_regs
            ),
            RegFile.ACC: SlotPool(
                "acc-regs", config.phys_acc_regs - config.arch_acc_regs
            ),
            # The vector-length register is renamed out of a tiny pool; it is
            # never a bottleneck but keeping it here makes the dependence
            # handling uniform.
            RegFile.VL: SlotPool("vl-regs", 8),
        }

        # Fast-path lookup tables: functional-unit pool and issue queue per
        # operation class.  Both are pure functions of the opclass, so
        # resolving them once here removes two chains of enum-property
        # checks (`is_memory`, `is_media`, ...) from the per-instruction
        # simulation loop.
        self._fu_by_class: Dict[OpClass, FunctionalUnitPool] = {}
        self._queue_by_class: Dict[OpClass, SlotPool] = {}
        for opclass in OpClass:
            if opclass.is_memory:
                fu = self._mem_ports
            elif opclass is OpClass.IMUL:
                fu = self._int_mul
            elif opclass.is_media:
                fu = self._media_fu
            else:
                fu = self._int_alu
            self._fu_by_class[opclass] = fu
            self._queue_by_class[opclass] = self._queues[_domain_of(opclass)]

        # Register readiness (architectural registers all ready at cycle 0).
        self._reg_ready: Dict[RegRef, int] = {}

        # Per-instruction pipeline times (ring buffers would do; lists are
        # simpler and the traces are modest).
        self._rename_times: list[int] = []
        self._commit_times: list[int] = []

        self._stalls: Dict[str, int] = {
            "rob": 0,
            "issue_queue": 0,
            "rename_regs": 0,
            "fetch_bw": 0,
        }

    # ------------------------------------------------------------------

    def _fu_for(self, instr: DynInstr) -> FunctionalUnitPool:
        return self._fu_by_class[instr.opclass]

    def _occupancy_of(self, instr: DynInstr) -> int:
        """Cycles the instruction occupies its functional unit or port."""
        cfg = self.config
        if instr.non_pipelined:
            # Non-pipelined matrix ops (transpose) hold the unit for their
            # whole latency.
            return cfg.latency_of(instr.opclass)
        if instr.opclass.is_memory:
            if instr.vly > 1:
                return math.ceil(instr.vly / cfg.mem_port_width)
            return 1
        if instr.opclass.is_media and instr.vly > 1:
            return math.ceil(instr.vly / cfg.media_lanes)
        return 1

    def _completion_latency(self, instr: DynInstr, occupancy: int) -> int:
        """Cycles from issue to result availability."""
        cfg = self.config
        base = cfg.latency_of(instr.opclass)
        if instr.opclass.is_store:
            return 1
        latency = base + (occupancy - 1)
        if (
            instr.opclass is OpClass.MEDIA_ACC
            and instr.vly > 1
        ):
            # MOM pipelined dimension-Y reduction: extra fixed latency for the
            # reduction tree (paper section 3.1).
            latency += cfg.mom_reduction_latency
        return latency

    # ------------------------------------------------------------------

    def run(self, trace: Trace, record_timeline: bool = False) -> SimResult:
        """Simulate ``trace`` and return the timing result.

        With ``record_timeline`` the per-instruction pipeline times are kept
        in :attr:`timeline` as ``(opcode, rename, ready, issue, complete,
        commit)`` tuples — useful for debugging and for the micro-level unit
        tests of the timing model.
        """
        cfg = self.config
        rename_times = self._rename_times
        commit_times = self._commit_times
        reg_ready = self._reg_ready
        self.timeline: list[tuple] = []

        # The loop below is the simulator's hot path (it runs once per
        # dynamic instruction across every sweep point), so everything
        # loop-invariant is hoisted into locals: configuration fields,
        # bound methods, the per-opclass lookup tables, and the stall
        # counters (plain ints here, written back to the dict at the end).
        fetch_width = cfg.fetch_width
        rob_size = cfg.rob_size
        commit_width = cfg.commit_width
        fu_by_class = self._fu_by_class
        queue_by_class = self._queue_by_class
        rename_pools_get = self._rename_pools.get
        reg_ready_get = reg_ready.get
        bw_probe = self._issue_bw.probe
        bw_next_slot = self._issue_bw.next_slot
        rename_append = rename_times.append
        commit_append = commit_times.append
        timeline_append = self.timeline.append
        media_acc = OpClass.MEDIA_ACC
        acc_file = RegFile.ACC

        stalls = self._stalls
        stall_fetch_bw = stalls["fetch_bw"]
        stall_rob = stalls["rob"]
        stall_queue = stalls["issue_queue"]
        stall_rename = stalls["rename_regs"]

        # (occupancy, completion latency) per (opclass, vly, non_pipelined):
        # both are pure functions of that triple for a fixed configuration,
        # so each distinct shape is computed once per core instead of once
        # per instruction.
        op_timing: dict = {}

        total_ops = 0
        last_commit = 0

        for i, instr in enumerate(trace):
            total_ops += instr.ops
            opclass = instr.opclass
            dsts = instr.dsts

            # ---- rename ------------------------------------------------
            candidate = rename_times[-1] if rename_times else 0
            if i >= fetch_width:
                bw_bound = rename_times[i - fetch_width] + 1
                if bw_bound > candidate:
                    stall_fetch_bw += bw_bound - candidate
                    candidate = bw_bound
            if i >= rob_size:
                rob_bound = commit_times[i - rob_size]
                if rob_bound > candidate:
                    stall_rob += rob_bound - candidate
                    candidate = rob_bound

            queue = queue_by_class[opclass]
            q_bound = queue.constrain(candidate)
            if q_bound > candidate:
                stall_queue += q_bound - candidate
                candidate = q_bound

            for dst in dsts:
                pool = rename_pools_get(dst.file)
                if pool is None:
                    continue
                r_bound = pool.constrain(candidate)
                if r_bound > candidate:
                    stall_rename += r_bound - candidate
                    candidate = r_bound

            rename_time = candidate
            rename_append(rename_time)

            # ---- ready (dataflow) ---------------------------------------
            ready = rename_time + 1
            for src in instr.srcs:
                t = reg_ready_get(src, 0)
                if t > ready:
                    ready = t

            # ---- issue ---------------------------------------------------
            # The instruction needs a functional unit (or memory port) for its
            # whole occupancy window and one issue slot in the start cycle;
            # iterate to a fixed point that satisfies both.
            timing = op_timing.get((opclass, instr.vly, instr.non_pipelined))
            if timing is None:
                occupancy = self._occupancy_of(instr)
                timing = (occupancy, self._completion_latency(instr, occupancy))
                op_timing[(opclass, instr.vly, instr.non_pipelined)] = timing
            occupancy, latency = timing

            fu = fu_by_class[opclass]
            fu_find_start = fu.find_start
            start = ready
            while True:
                fu_start = fu_find_start(start, occupancy)
                bw_start = bw_probe(fu_start)
                if bw_start == fu_start:
                    issue_time = fu_start
                    break
                start = bw_start
            fu.reserve(issue_time, occupancy)
            bw_next_slot(issue_time)
            queue.occupy(issue_time)

            # ---- complete ------------------------------------------------
            complete = issue_time + latency
            if opclass is media_acc and instr.vly <= 1:
                # MDMX-style accumulate: the accumulator feedback path lives in
                # the final adder stage, so a dependent accumulate can issue the
                # next cycle even though the full result (as read out into an
                # ordinary register) takes the whole latency.  This is the
                # "artificial recurrence" of section 3.1 at its real cost of
                # one cycle per accumulate.
                acc_forward = issue_time + occupancy
                for dst in dsts:
                    reg_ready[dst] = acc_forward if dst.file is acc_file else complete
            else:
                for dst in dsts:
                    reg_ready[dst] = complete

            # ---- commit --------------------------------------------------
            commit = complete + 1
            if commit_times:
                prev_commit = commit_times[-1]
                if prev_commit > commit:
                    commit = prev_commit
            if i >= commit_width:
                cw_bound = commit_times[i - commit_width] + 1
                if cw_bound > commit:
                    commit = cw_bound
            commit_append(commit)
            last_commit = commit

            for dst in dsts:
                pool = rename_pools_get(dst.file)
                if pool is not None:
                    pool.occupy(commit)

            if record_timeline:
                timeline_append(
                    (instr.opcode, rename_time, ready, issue_time, complete, commit)
                )

        stalls["fetch_bw"] = stall_fetch_bw
        stalls["rob"] = stall_rob
        stalls["issue_queue"] = stall_queue
        stalls["rename_regs"] = stall_rename

        return SimResult(
            cycles=last_commit,
            instructions=len(trace),
            operations=total_ops,
            kernel=trace.name,
            isa=trace.isa,
            config_name=cfg.name,
            mem_latency=cfg.mem_latency,
            issue_width=cfg.issue_width,
            stall_breakdown=dict(self._stalls),
        )


def simulate_trace(trace: Trace, config: Optional[MachineConfig] = None) -> SimResult:
    """Simulate a trace on a (fresh) out-of-order core.

    Parameters
    ----------
    trace:
        Dynamic instruction trace produced by a kernel builder.
    config:
        Machine configuration; defaults to the paper's 4-way core with
        1-cycle memory latency.
    """
    if config is None:
        config = MachineConfig.for_way(4)
    core = OutOfOrderCore(config)
    return core.run(trace)
