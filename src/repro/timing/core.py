"""Interval-style out-of-order core model.

Instructions from a trace are processed in program order; for each one the
model computes

* ``rename`` time — bounded by in-order fetch/rename bandwidth, ROB space,
  issue-queue space in the instruction's domain and rename head-room of each
  destination register file;
* ``ready`` time — the dataflow constraint (all source registers ready);
* ``issue`` time — bounded by a free functional unit / memory port, issue
  bandwidth and the ready time;
* ``complete`` time — issue + execution latency + (occupancy - 1) for
  multi-cycle vector/matrix instructions;
* ``commit`` time — in-order, bounded by commit bandwidth.

This is the standard interval approximation of an out-of-order pipeline: it
captures dataflow ILP, structural hazards and the latency-hiding ability of
the instruction window without a cycle-by-cycle event loop, which keeps the
pure-Python model fast enough to sweep the paper's full parameter space.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.isa.opclasses import OpClass, RegFile
from repro.timing.config import MachineConfig
from repro.timing.resources import BandwidthLimiter, FunctionalUnitPool, SlotPool
from repro.timing.results import SimResult
from repro.trace.container import Trace
from repro.trace.instruction import DynInstr, RegRef

__all__ = ["OutOfOrderCore", "simulate_trace"]


# Domain names used for issue queues.
_DOMAIN_INT = "int"
_DOMAIN_MEM = "mem"
_DOMAIN_MEDIA = "media"


def _domain_of(opclass: OpClass) -> str:
    if opclass.is_memory:
        return _DOMAIN_MEM
    if opclass.is_media:
        return _DOMAIN_MEDIA
    return _DOMAIN_INT


class OutOfOrderCore:
    """One simulated out-of-order core instance.

    A core instance is single-use: create one per (trace, configuration)
    pair, or use the :func:`simulate_trace` convenience wrapper.
    """

    def __init__(self, config: MachineConfig) -> None:
        self.config = config

        # Functional units.
        self._int_alu = FunctionalUnitPool("ialu", config.num_int_alu)
        self._int_mul = FunctionalUnitPool("imul", config.num_int_mul)
        self._mem_ports = FunctionalUnitPool("mem", config.num_mem_ports)
        self._media_fu = FunctionalUnitPool("media", config.num_media_fu)

        # Bandwidth.
        self._issue_bw = BandwidthLimiter(config.issue_width)

        # Issue queues.
        self._queues = {
            _DOMAIN_INT: SlotPool("intq", config.int_queue_size),
            _DOMAIN_MEM: SlotPool("memq", config.mem_queue_size),
            _DOMAIN_MEDIA: SlotPool("mediaq", config.media_queue_size),
        }

        # Rename head-room per register file (physical minus architectural).
        self._rename_pools = {
            RegFile.INT: SlotPool(
                "int-regs", config.phys_int_regs - config.arch_int_regs
            ),
            RegFile.MEDIA: SlotPool(
                "media-regs", config.phys_media_regs - config.arch_media_regs
            ),
            RegFile.MATRIX: SlotPool(
                "matrix-regs", config.phys_matrix_regs - config.arch_matrix_regs
            ),
            RegFile.ACC: SlotPool(
                "acc-regs", config.phys_acc_regs - config.arch_acc_regs
            ),
            # The vector-length register is renamed out of a tiny pool; it is
            # never a bottleneck but keeping it here makes the dependence
            # handling uniform.
            RegFile.VL: SlotPool("vl-regs", 8),
        }

        # Register readiness (architectural registers all ready at cycle 0).
        self._reg_ready: Dict[RegRef, int] = {}

        # Per-instruction pipeline times (ring buffers would do; lists are
        # simpler and the traces are modest).
        self._rename_times: list[int] = []
        self._commit_times: list[int] = []

        self._stalls: Dict[str, int] = {
            "rob": 0,
            "issue_queue": 0,
            "rename_regs": 0,
            "fetch_bw": 0,
        }

    # ------------------------------------------------------------------

    def _fu_for(self, instr: DynInstr) -> FunctionalUnitPool:
        opclass = instr.opclass
        if opclass.is_memory:
            return self._mem_ports
        if opclass is OpClass.IMUL:
            return self._int_mul
        if opclass.is_media:
            return self._media_fu
        return self._int_alu

    def _occupancy_of(self, instr: DynInstr) -> int:
        """Cycles the instruction occupies its functional unit or port."""
        cfg = self.config
        if instr.non_pipelined:
            # Non-pipelined matrix ops (transpose) hold the unit for their
            # whole latency.
            return cfg.latency_of(instr.opclass)
        if instr.opclass.is_memory:
            if instr.vly > 1:
                return math.ceil(instr.vly / cfg.mem_port_width)
            return 1
        if instr.opclass.is_media and instr.vly > 1:
            return math.ceil(instr.vly / cfg.media_lanes)
        return 1

    def _completion_latency(self, instr: DynInstr, occupancy: int) -> int:
        """Cycles from issue to result availability."""
        cfg = self.config
        base = cfg.latency_of(instr.opclass)
        if instr.opclass.is_store:
            return 1
        latency = base + (occupancy - 1)
        if (
            instr.opclass is OpClass.MEDIA_ACC
            and instr.vly > 1
        ):
            # MOM pipelined dimension-Y reduction: extra fixed latency for the
            # reduction tree (paper section 3.1).
            latency += cfg.mom_reduction_latency
        return latency

    # ------------------------------------------------------------------

    def run(self, trace: Trace, record_timeline: bool = False) -> SimResult:
        """Simulate ``trace`` and return the timing result.

        With ``record_timeline`` the per-instruction pipeline times are kept
        in :attr:`timeline` as ``(opcode, rename, ready, issue, complete,
        commit)`` tuples — useful for debugging and for the micro-level unit
        tests of the timing model.
        """
        cfg = self.config
        rename_times = self._rename_times
        commit_times = self._commit_times
        reg_ready = self._reg_ready
        self.timeline: list[tuple] = []

        total_ops = 0
        last_commit = 0

        for i, instr in enumerate(trace):
            total_ops += instr.ops

            # ---- rename ------------------------------------------------
            candidate = rename_times[-1] if rename_times else 0
            if i >= cfg.fetch_width:
                bw_bound = rename_times[i - cfg.fetch_width] + 1
                if bw_bound > candidate:
                    self._stalls["fetch_bw"] += bw_bound - candidate
                    candidate = bw_bound
            if i >= cfg.rob_size:
                rob_bound = commit_times[i - cfg.rob_size]
                if rob_bound > candidate:
                    self._stalls["rob"] += rob_bound - candidate
                    candidate = rob_bound

            domain = _domain_of(instr.opclass)
            queue = self._queues[domain]
            q_bound = queue.constrain(candidate)
            if q_bound > candidate:
                self._stalls["issue_queue"] += q_bound - candidate
                candidate = q_bound

            for dst in instr.dsts:
                pool = self._rename_pools.get(dst.file)
                if pool is None:
                    continue
                r_bound = pool.constrain(candidate)
                if r_bound > candidate:
                    self._stalls["rename_regs"] += r_bound - candidate
                    candidate = r_bound

            rename_time = candidate
            rename_times.append(rename_time)

            # ---- ready (dataflow) ---------------------------------------
            ready = rename_time + 1
            for src in instr.srcs:
                t = reg_ready.get(src, 0)
                if t > ready:
                    ready = t

            # ---- issue ---------------------------------------------------
            # The instruction needs a functional unit (or memory port) for its
            # whole occupancy window and one issue slot in the start cycle;
            # iterate to a fixed point that satisfies both.
            fu = self._fu_for(instr)
            occupancy = self._occupancy_of(instr)
            start = ready
            while True:
                fu_start = fu.find_start(start, occupancy)
                bw_start = self._issue_bw.probe(fu_start)
                if bw_start == fu_start:
                    issue_time = fu_start
                    break
                start = bw_start
            fu.reserve(issue_time, occupancy)
            self._issue_bw.next_slot(issue_time)
            queue.occupy(issue_time)

            # ---- complete ------------------------------------------------
            complete = issue_time + self._completion_latency(instr, occupancy)
            acc_forward = None
            if instr.opclass is OpClass.MEDIA_ACC and instr.vly <= 1:
                # MDMX-style accumulate: the accumulator feedback path lives in
                # the final adder stage, so a dependent accumulate can issue the
                # next cycle even though the full result (as read out into an
                # ordinary register) takes the whole latency.  This is the
                # "artificial recurrence" of section 3.1 at its real cost of
                # one cycle per accumulate.
                acc_forward = issue_time + occupancy
            for dst in instr.dsts:
                if acc_forward is not None and dst.file is RegFile.ACC:
                    reg_ready[dst] = acc_forward
                else:
                    reg_ready[dst] = complete

            # ---- commit --------------------------------------------------
            commit = complete + 1
            if commit_times:
                commit = max(commit, commit_times[-1])
            if i >= cfg.commit_width:
                commit = max(commit, commit_times[i - cfg.commit_width] + 1)
            commit_times.append(commit)
            last_commit = commit

            for dst in instr.dsts:
                pool = self._rename_pools.get(dst.file)
                if pool is not None:
                    pool.occupy(commit)

            if record_timeline:
                self.timeline.append(
                    (instr.opcode, rename_time, ready, issue_time, complete, commit)
                )

        return SimResult(
            cycles=last_commit,
            instructions=len(trace),
            operations=total_ops,
            kernel=trace.name,
            isa=trace.isa,
            config_name=cfg.name,
            mem_latency=cfg.mem_latency,
            issue_width=cfg.issue_width,
            stall_breakdown=dict(self._stalls),
        )


def simulate_trace(trace: Trace, config: Optional[MachineConfig] = None) -> SimResult:
    """Simulate a trace on a (fresh) out-of-order core.

    Parameters
    ----------
    trace:
        Dynamic instruction trace produced by a kernel builder.
    config:
        Machine configuration; defaults to the paper's 4-way core with
        1-cycle memory latency.
    """
    if config is None:
        config = MachineConfig.for_way(4)
    core = OutOfOrderCore(config)
    return core.run(trace)
