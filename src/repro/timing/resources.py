"""Structural-resource trackers for the out-of-order timing model.

Three small trackers capture every structural constraint the model applies:

* :class:`FunctionalUnitPool` — a set of identical units; an instruction
  occupies one unit for ``occupancy`` cycles (vector instructions occupy it
  for ``ceil(VL / lanes)`` cycles).
* :class:`BandwidthLimiter` — at most ``width`` events per cycle (used for
  the issue stage, whose selections are not program-ordered).
* :class:`SlotPool` — a pool of slots held by in-flight instructions
  (issue-queue entries, rename head-room of a physical register file); a
  slot is freed when its holder reaches a known future time.

These classes are the *reference* implementations, used by the object-level
``OutOfOrderCore.run()`` loop.  The lowered backend
(:meth:`~repro.timing.core.OutOfOrderCore.run_lowered`) inlines the same
semantics as raw dicts/heaps local to its hot loop — any behavioural change
here must be mirrored there, and is pinned by the golden snapshots plus the
equivalence suite in ``tests/timing/test_lowered.py``.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List

__all__ = ["FunctionalUnitPool", "BandwidthLimiter", "SlotPool"]


class FunctionalUnitPool:
    """A pool of identical functional units with per-cycle occupancy.

    Out-of-order issue means a late-arriving (program-order) instruction may
    use a unit in a cycle that an earlier instruction left idle, so the pool
    tracks how many units are busy in *each cycle* rather than a per-unit
    "next free" horizon.  An instruction occupies one unit for ``occupancy``
    consecutive cycles (vector/matrix instructions and non-pipelined
    operations have occupancy > 1).
    """

    def __init__(self, name: str, count: int) -> None:
        if count < 1:
            raise ValueError(f"functional unit pool {name!r} needs >= 1 unit")
        self.name = name
        self.count = count
        self._busy: Dict[int, int] = {}
        self._busy_cycles = 0

    def find_start(self, ready: int, occupancy: int) -> int:
        """Earliest start cycle >= ``ready`` with a unit free for the whole
        occupancy window (without reserving it)."""
        busy_get = self._busy.get
        count = self.count
        if occupancy <= 1:
            # Single-cycle occupancy (the overwhelmingly common case in
            # scalar/MMX/MDMX traces): a plain forward scan.
            start = ready
            while busy_get(start, 0) >= count:
                start += 1
            return start
        start = ready
        while True:
            conflict = -1
            for cycle in range(start, start + occupancy):
                if busy_get(cycle, 0) >= count:
                    conflict = cycle
                    break
            if conflict < 0:
                return start
            start = conflict + 1

    def reserve(self, start: int, occupancy: int) -> None:
        """Mark one unit busy for ``occupancy`` cycles starting at ``start``."""
        occupancy = max(1, occupancy)
        busy = self._busy
        busy_get = busy.get
        for cycle in range(start, start + occupancy):
            busy[cycle] = busy_get(cycle, 0) + 1
        self._busy_cycles += occupancy

    def acquire(self, ready: int, occupancy: int) -> int:
        """Find and reserve the earliest feasible start cycle."""
        start = self.find_start(ready, occupancy)
        self.reserve(start, occupancy)
        return start

    @property
    def busy_cycles(self) -> int:
        """Total unit-cycles reserved so far (diagnostics / utilisation)."""
        return self._busy_cycles


class BandwidthLimiter:
    """At most ``width`` events per cycle.

    Used for issue bandwidth; rename and commit bandwidth are in-order and
    handled directly in the core with the ``i - width`` recurrence.
    """

    def __init__(self, width: int) -> None:
        if width < 1:
            raise ValueError("bandwidth must be >= 1")
        self.width = width
        self._used: Dict[int, int] = {}

    def next_slot(self, earliest: int) -> int:
        """Find and reserve the first cycle >= ``earliest`` with a free slot."""
        used = self._used
        used_get = used.get
        width = self.width
        cycle = earliest
        while used_get(cycle, 0) >= width:
            cycle += 1
        used[cycle] = used_get(cycle, 0) + 1
        return cycle

    def probe(self, earliest: int) -> int:
        """First cycle >= ``earliest`` with a free slot, without reserving."""
        used_get = self._used.get
        width = self.width
        cycle = earliest
        while used_get(cycle, 0) >= width:
            cycle += 1
        return cycle


class SlotPool:
    """A pool of ``capacity`` slots held by in-flight instructions.

    ``acquire(candidate, release_time_unknown)`` is split into two calls in
    the core: :meth:`constrain` returns the earliest time a slot is free
    given the candidate time, and :meth:`occupy` records the new occupant's
    (already known or later back-patched) release time.
    """

    def __init__(self, name: str, capacity: int) -> None:
        self.name = name
        self.capacity = max(0, capacity)
        # Min-heap of occupant release times: eviction pops the earliest
        # leavers in O(log n) instead of rebuilding a list per query.
        self._release_times: List[int] = []

    def constrain(self, candidate: int) -> int:
        """Earliest time >= ``candidate`` at which a slot is available.

        Occupants whose release time is <= the candidate are evicted; if the
        pool is still full the candidate is pushed to the earliest release
        (whose occupant then leaves, freeing the slot the caller takes).
        """
        if self.capacity == 0:
            return candidate
        heap = self._release_times
        # Drop occupants that have already left by the candidate time.
        while heap and heap[0] <= candidate:
            heappop(heap)
        if len(heap) < self.capacity:
            return candidate
        earliest = heappop(heap)
        return max(candidate, earliest)

    def occupy(self, release_time: int) -> None:
        """Record a new occupant that will release its slot at ``release_time``."""
        if self.capacity == 0:
            return
        heappush(self._release_times, release_time)
