"""NumPy batch timing backend: all configurations of one trace in one pass.

The paper's experiments are sweeps of one dynamic trace across many machine
configurations (issue widths x memory latencies x queue/register-file
ablations).  The lowered interpreter (:meth:`OutOfOrderCore.run_lowered`)
already amortises the *lowering* across those configurations, but each one
still pays a full Python interpreter pass over the trace.  This module
amortises the interpreter itself: :func:`run_lowered_batch` walks the
instruction rows **once** and advances the scoreboards of all ``N``
configurations simultaneously as ndarray columns —

* register-ready times as one ``(N, num_regs)`` array;
* rename/commit histories as ``(pad + n, N)`` arrays, the per-config
  fetch/ROB/commit-width bounds one fancy gather each (the pad rows encode
  "no constraint yet", so there is no per-config branch);
* functional-unit and issue-bandwidth busy counts as one
  ``(kinds + 1, N, cycles)`` array, the issue search a vectorised window
  scan shared by every configuration;
* issue queues as capacity-banded slot matrices with lazy eviction,
  deferred pushes and per-config full-queue thresholds (legal because a
  queue's constrain candidates never decrease — see :class:`_QueueState`),
  so a row that cannot possibly hit a full queue pays no NumPy at all;
* rename pools as sliding windows over their commit-push history — slot
  releases at commit time are monotone, so the exact
  :class:`~repro.timing.resources.SlotPool` bound for the ``j``-th push is
  the value of push ``j - capacity``, one gather per destination;
* the per-config ``(occupancy, latency, functional unit, issue queue)``
  shape resolution one table built up front through the *same*
  :func:`~repro.timing.core.occupancy_of` /
  :func:`~repro.timing.core.completion_latency` the scalar backends use.

Cycle counts, stall breakdowns and timelines are **bit-identical** to
:meth:`~repro.timing.core.OutOfOrderCore.run_lowered` (and therefore to the
object loop and the goldens — ``MODEL_VERSION`` is untouched); the
equivalence suite in ``tests/timing/test_vector.py`` pins it.

Cost model and the adaptive cut-over
------------------------------------

A NumPy operation on small arrays costs a roughly constant ~0.3-1 µs of
dispatch overhead regardless of the batch width, and the array program
spends ~30-40 operations per instruction row *for the whole batch*, while
the per-config interpreter spends ~1.3 µs per row *per config*.  The array
program therefore loses below :data:`VECTOR_MIN_BATCH` configurations
(measured cut-over ~45-60 on the reference trace) and wins beyond it —
~3.5x per config at 256 configurations and ~4.5x at 384 on the reference
trace, asymptotically bounded by the per-row array work.
:func:`run_lowered_batch` picks the faster strategy automatically:
batches smaller than :data:`VECTOR_MIN_BATCH` run the per-config lowered
interpreter, larger ones run the array program; ``force_vector`` overrides
in both directions (the CLI's ``--backend vector`` forces the array
program, ``--backend lowered`` avoids this module entirely).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.isa.opclasses import OpClass
from repro.timing.config import MachineConfig
from repro.timing.core import (VL_RENAME_SLOTS, OutOfOrderCore,
                               completion_latency, occupancy_of)
from repro.timing.lowered import REG_POOL_ORDER, LoweredTrace
from repro.timing.results import SimResult

__all__ = ["VECTOR_AUTO_CELL_BUDGET", "VECTOR_MIN_BATCH", "add_batch_hook",
           "effective_min_batch", "remove_batch_hook", "run_lowered_batch",
           "set_min_batch_override"]

#: Smallest batch for which the array program is worth its per-row NumPy
#: dispatch overhead; below it :func:`run_lowered_batch` loops the
#: per-config lowered interpreter instead.  Measured cut-over on the
#: reference trace is ~45-60 configs; the margin keeps the loop path on
#: machines where NumPy dispatch is relatively more expensive.  This
#: constant is the *fallback*: ``repro calibrate``
#: (:mod:`repro.timing.calibrate`) measures the cut-over on the local
#: machine and persists it, and :func:`effective_min_batch` prefers that
#: measurement when one exists.
VECTOR_MIN_BATCH = 64

# Calibration state for effective_min_batch(): an in-process override
# (tests, or a just-finished `repro calibrate`) beats the persisted file,
# which is read lazily exactly once and beats the constant.
_MIN_BATCH_OVERRIDE: Optional[int] = None
_FILE_MIN_BATCH: Optional[int] = None
_FILE_CHECKED = False


def set_min_batch_override(value: Optional[int]) -> None:
    """Pin (or with None clear) the in-process ``auto`` cut-over.

    Clearing also forgets the lazily-read persisted calibration, so the
    next :func:`effective_min_batch` call re-reads the file — which is
    what the CLI and the tests need after writing one.
    """
    global _MIN_BATCH_OVERRIDE, _FILE_MIN_BATCH, _FILE_CHECKED
    _MIN_BATCH_OVERRIDE = None if value is None else max(1, int(value))
    _FILE_MIN_BATCH = None
    _FILE_CHECKED = False


def effective_min_batch() -> int:
    """The live ``auto`` cut-over: override, else persisted calibration,
    else :data:`VECTOR_MIN_BATCH`."""
    global _FILE_MIN_BATCH, _FILE_CHECKED
    if _MIN_BATCH_OVERRIDE is not None:
        return _MIN_BATCH_OVERRIDE
    if not _FILE_CHECKED:
        from repro.timing.calibrate import load_calibration

        _FILE_MIN_BATCH = load_calibration()
        _FILE_CHECKED = True
    if _FILE_MIN_BATCH is not None:
        return _FILE_MIN_BATCH
    return VECTOR_MIN_BATCH

#: Upper bound on ``instructions x configs`` for the *automatic* vector
#: choice.  The array program's working set is O(n x N) — the interleaved
#: history alone is ``16 * n * N`` bytes, the busy planes ~``10 * n * N``
#: — versus O(n) for the per-config interpreter, so a huge trace swept
#: over a wide batch should not be silently routed into hundreds of MB of
#: scratch.  At this bound the scratch stays around half a GB.  Explicit
#: ``backend="vector"`` / ``force_vector=True`` bypasses the budget.
VECTOR_AUTO_CELL_BUDGET = 1 << 24


def _auto_uses_vector(num_configs: int, num_instructions: int) -> bool:
    """The ``auto`` rule shared by :func:`run_lowered_batch` and the
    dispatch layer's :func:`~repro.timing.dispatch.resolve_execution`."""
    return (num_configs >= effective_min_batch()
            and num_configs * num_instructions <= VECTOR_AUTO_CELL_BUDGET)

#: Observers called as ``hook(trace_name, isa, num_configs, mode)`` after
#: every :func:`run_lowered_batch` call, with ``mode`` one of ``"vector"``
#: (array program) or ``"lowered"`` (per-config interpreter loop).  The
#: engine tests and benchmarks register counters here to assert routing.
_BATCH_HOOKS: List[Callable[[str, str, int, str], None]] = []

_HUGE = 1 << 60


def add_batch_hook(hook: Callable[[str, str, int, str], None]
                   ) -> Callable[[str, str, int, str], None]:
    """Register an observer for batch simulations; returns ``hook``."""
    _BATCH_HOOKS.append(hook)
    return hook


def remove_batch_hook(hook: Callable[[str, str, int, str], None]) -> None:
    """Unregister a previously added batch hook (no-op if absent)."""
    try:
        _BATCH_HOOKS.remove(hook)
    except ValueError:
        pass


def run_lowered_batch(lowered: LoweredTrace,
                      configs: Sequence[MachineConfig],
                      record_timeline: bool = False,
                      force_vector: Optional[bool] = None
                      ) -> List[SimResult]:
    """Simulate ``lowered`` under every configuration; one result per config.

    Bit-identical to ``[OutOfOrderCore(c).run_lowered(lowered) for c in
    configs]`` — duplicate configurations are legal and produce duplicate
    results.  With ``record_timeline`` each returned
    :class:`~repro.timing.results.SimResult` additionally carries its
    per-instruction pipeline timeline as a ``timeline`` attribute (the
    same ``(opcode, rename, ready, issue, complete, commit)`` tuples the
    scalar cores expose).

    ``force_vector`` pins the execution strategy: ``True`` always runs the
    array program, ``False`` always loops the per-config interpreter, and
    ``None`` (the default) picks by batch size against
    :data:`VECTOR_MIN_BATCH`, capped by the
    :data:`VECTOR_AUTO_CELL_BUDGET` memory budget.

    One class of trace is declined by the array program regardless of
    ``force_vector``: instructions with two destinations in the *same*
    rename pool (no kernel builder emits them) break the sliding-window
    pool premise — a full pool pops exactly once per push — so those
    traces always run the per-config interpreter, keeping the
    bit-identity contract unconditional.
    """
    configs = list(configs)
    if force_vector is None:
        use_vector = _auto_uses_vector(len(configs),
                                       lowered.num_instructions)
    else:
        use_vector = bool(force_vector)
    if use_vector and lowered.has_same_pool_multi_dst:
        use_vector = False
    if use_vector:
        results = _run_vector(lowered, configs, record_timeline)
        mode = "vector"
    else:
        results = []
        for config in configs:
            core = OutOfOrderCore(config)
            result = core.run_lowered(lowered,
                                      record_timeline=record_timeline)
            if record_timeline:
                result.timeline = core.timeline
            results.append(result)
        mode = "lowered"
    for hook in _BATCH_HOOKS:
        hook(lowered.name, lowered.isa, len(configs), mode)
    return results


#: Capacity-band upper bounds for queue partitioning: configurations whose
#: queue capacity falls in the same band share one slot matrix, so the
#: small queues that fill constantly scan narrow matrices while the large
#: ones idle for free.
_QUEUE_BANDS = (8, 32)

#: Forced flush point for the deferred-push buffer (bounds its memory).
_PENDING_LIMIT = 2048


class _QueueBand:
    """One capacity band of one issue queue: a ``(B, K)`` array of occupant
    release times for the ``B`` configurations whose capacity falls in the
    band, ``K`` the band's largest capacity."""

    __slots__ = ("cidx", "slots", "caps", "width", "taken", "arange",
                 "thresholds", "next_trigger", "huge")

    def __init__(self, cidx: Optional[np.ndarray], caps: np.ndarray,
                 dtype: np.dtype) -> None:
        self.cidx = cidx            # config rows of this band; None = all
        self.caps = caps            # (B,) capacities, all >= 1
        self.width = int(caps.max())
        self.arange = np.arange(len(caps))
        self.huge = np.iinfo(dtype).max
        self.slots = np.full((len(caps), self.width), -1, dtype=dtype)
        #: How many entries of the owning queue's pending buffer this band
        #: has already folded into ``slots``.
        self.taken = 0
        #: Per config: the queue-push count at which it could next be full
        #: (its live count at the last scan plus pushes since would reach
        #: capacity).  Deaths only shrink live counts, so a config provably
        #: cannot bind before its threshold — and the band cannot bind
        #: before the smallest one, cached as a plain Python int so the
        #: per-row check costs no NumPy at all.
        self.thresholds = caps.astype(np.int64).copy()
        self.next_trigger = int(caps.min())


class _QueueState:
    """Vectorised :class:`~repro.timing.resources.SlotPool` for one issue
    queue across every configuration.

    Three ideas keep its amortised per-instruction cost near zero:

    * **Lazy eviction** — a queue's constrain candidates never decrease
      (each is bounded below by the previous instruction's rename time),
      so occupants whose release time fell at or below the candidate
      simply stop counting as live; they are never physically drained.
      Only the scalar pool's *pop* (the occupant whose departure a full
      pool's newcomer waits for) needs a physical write.

    * **Deferred pushes** — every push raises every configuration's live
      count by exactly one, so "could any configuration be full?" is a
      Python integer comparison of the queue's monotone push counter
      against the band's :attr:`_QueueBand.next_trigger`; pushes append
      to a Python list and only touch NumPy when a band must actually
      scan.  A flush folds pending releases into the slot matrix either
      one-at-a-time over each row's minimum slot (``max()`` — if the
      incoming value is live the row minimum is dead, if it is dead it
      loses to any live minimum) or, for large backlogs, with one
      ``np.partition``: live values are strictly above every dead value
      and at most ``cap <= K`` per row, so the top ``K`` of
      ``concat(slots, pending)`` preserves exactly the live set.

    * **Capacity bands with per-config thresholds** — configurations are
      partitioned by capacity (:data:`_QUEUE_BANDS`), and a triggered
      scan touches only the rows whose own threshold has passed, so a
      single saturated 1-wide configuration scans a ``(few, 8)`` matrix,
      not the whole batch.  Capacity-0 (unconstrained) configurations
      belong to no band: the scalar pool neither constrains nor records
      occupants for them.
    """

    __slots__ = ("bands", "pending", "total")

    def __init__(self, caps: np.ndarray,
                 dtype: np.dtype = np.dtype(np.int64)) -> None:
        self.bands: List[_QueueBand] = []
        self.pending: List[np.ndarray] = []
        self.total = 0
        active = caps > 0
        if not active.any():
            return
        grouped = np.digitize(caps, _QUEUE_BANDS)
        if active.all() and len(np.unique(grouped)) == 1:
            # Homogeneous batch: one band, no index indirection.
            self.bands.append(_QueueBand(None, caps, dtype))
            return
        for band in np.unique(grouped[active]):
            cidx = np.flatnonzero(active & (grouped == band))
            self.bands.append(_QueueBand(cidx, caps[cidx], dtype))

    def constrain(self, candidate: np.ndarray) -> np.ndarray:
        """Per-config earliest time >= candidate with a slot available."""
        total = self.total
        for band in self.bands:
            if total >= band.next_trigger:
                candidate = self._scan(band, candidate)
        return candidate

    def push(self, release: np.ndarray) -> None:
        """Record one occupant per config releasing at ``release``."""
        self.total += 1
        self.pending.append(release)
        if len(self.pending) >= _PENDING_LIMIT:
            for band in self.bands:
                self._flush(band)
                band.taken = 0
            self.pending.clear()

    def _flush(self, band: _QueueBand) -> None:
        """Fold the band's unconsumed pending pushes into its slot matrix."""
        depth = len(self.pending)
        count = depth - band.taken
        if count == 0:
            return
        if count <= 2:
            # The saturated-queue steady state: one push per scan.  Write
            # each pending value over its row's minimum slot via max().
            # If the incoming value is live, at most cap-1 slot occupants
            # are (the scalar pool never holds more than cap), so the
            # minimum slot is dead and max() installs the newcomer; if the
            # incoming value is dead it loses to any live minimum (live
            # values exceed the bound, dead ones do not) and dead-on-dead
            # is filler either way.
            slots = band.slots
            rows = band.arange
            for entry in self.pending[band.taken:]:
                sub = entry if band.cidx is None else entry[band.cidx]
                j = slots.argmin(1)
                current = slots[rows, j]
                slots[rows, j] = np.maximum(current, sub)
            band.taken = depth
            return
        stacked = np.stack(self.pending[band.taken:])
        band.taken = depth
        if band.cidx is not None:
            stacked = stacked[:, band.cidx]
        combined = np.concatenate(
            [band.slots, stacked.T.astype(band.slots.dtype)], axis=1)
        # Live values are strictly greater than every dead value (dead
        # means at or below the non-decreasing candidate), and there are
        # at most `cap <= width` of them per row: the top `width` keeps
        # them all.
        band.slots = np.partition(
            combined, combined.shape[1] - band.width,
            axis=1)[:, -band.width:]

    def _scan(self, band: _QueueBand, candidate: np.ndarray) -> np.ndarray:
        """Exact scan of the band rows whose threshold has passed; folds
        their bound into the candidate."""
        self._flush(band)
        total = self.total
        act = np.flatnonzero(band.thresholds <= total)
        rows = act if band.cidx is None else band.cidx[act]
        sub = band.slots[act]
        # Compare in the slots' (possibly narrow) dtype: the candidate is
        # bounded by the same cycle ceiling the dtype was chosen for.
        live = sub > candidate[rows][:, None].astype(sub.dtype)
        count = live.sum(1)
        full = count >= band.caps[act]
        if full.any():
            masked = np.where(live, sub, band.huge)
            j = masked.argmin(1)
            hit = np.flatnonzero(full)
            bounded = candidate.copy()
            bounded[rows[hit]] = masked[hit, j[hit]]
            # The full pool's newcomer takes the earliest leaver's slot.
            band.slots[act[hit], j[hit]] = -1
            count = count - full
            candidate = bounded
        band.thresholds[act] = total + band.caps[act] - count
        band.next_trigger = int(band.thresholds.min())
        return candidate


#: Issue-search scan widths, growing per iteration so bandwidth-saturated
#: configurations (a 1-wide core issues one instruction per cycle, so an
#: instruction whose operands became ready far in the past scans a long
#: fully-booked region) converge in a handful of gathers.
_OCC1_WIDTHS = (8, 64, 256, 1024)
_START_WIDTHS = (8, 32, 128)


def _run_vector(lowered: LoweredTrace, configs: List[MachineConfig],
                record_timeline: bool) -> List[SimResult]:
    """The array program itself (see the module docstring for the layout)."""
    num_configs = len(configs)
    if num_configs == 0:
        return []
    n = lowered.num_instructions
    # Instantiating a core per config applies the exact resource validation
    # the scalar backends apply (>= 1 functional unit per pool, >= 1 issue
    # slot); the throwaway cores are never run.
    for config in configs:
        OutOfOrderCore(config)

    nidx = np.arange(num_configs)
    nidx_col = nidx[:, None]

    def col(field: str) -> np.ndarray:
        return np.fromiter((getattr(c, field) for c in configs),
                           dtype=np.int64, count=num_configs)

    fetch_width = col("fetch_width")
    rob_size = col("rob_size")
    commit_width = col("commit_width")

    # Functional-unit kinds in the grouping of the scalar backends
    # (int ALU, int mul, memory ports, media units) plus one extra plane
    # for issue bandwidth, stacked so the issue search gathers unit and
    # bandwidth occupancy in one operation.  Busy counts never exceed the
    # unit count of their pool, so the planes use the narrowest dtype the
    # batch's largest pool fits (int8 keeps the growth copies and the
    # gathered windows small).
    fu_counts = (col("num_int_alu"), col("num_int_mul"),
                 col("num_mem_ports"), col("num_media_fu"))
    plane_limit = max(max(int(c.max()) for c in fu_counts),
                      int(col("issue_width").max()))
    if plane_limit < 120:
        plane_dtype = np.int8
    elif plane_limit < 32000:
        plane_dtype = np.int16
    else:
        plane_dtype = np.int32
    bw_col = col("issue_width").astype(plane_dtype)[:, None]

    queue_caps = (np.maximum(col("int_queue_size"), 0),
                  np.maximum(col("mem_queue_size"), 0),
                  np.maximum(col("media_queue_size"), 0))

    rename_caps = [
        np.maximum(col("phys_int_regs") - col("arch_int_regs"), 0),
        np.maximum(col("phys_media_regs") - col("arch_media_regs"), 0),
        np.maximum(col("phys_matrix_regs") - col("arch_matrix_regs"), 0),
        np.maximum(col("phys_acc_regs") - col("arch_acc_regs"), 0),
        np.full(num_configs, VL_RENAME_SLOTS, dtype=np.int64),
    ]
    assert len(rename_caps) == len(REG_POOL_ORDER)

    # --- per-(shape, config) resolution --------------------------------
    shape_recs = []
    for opclass, vly, non_pipelined in lowered.shapes:
        occ = np.fromiter(
            (occupancy_of(c, opclass, vly, non_pipelined) for c in configs),
            dtype=np.int64, count=num_configs)
        lat = np.fromiter(
            (completion_latency(c, opclass, vly, int(o))
             for c, o in zip(configs, occ)),
            dtype=np.int64, count=num_configs)
        if opclass.is_memory:
            kind, queue = 2, 1
        elif opclass is OpClass.IMUL:
            kind, queue = 1, 0
        elif opclass.is_media:
            kind, queue = 3, 2
        else:
            kind, queue = 0, 0
        max_occ = int(occ.max())
        rec = {
            "occ": occ,
            "lat": lat,
            "kind": kind,
            "queue": queue,
            "acc_fwd": opclass is OpClass.MEDIA_ACC and vly <= 1,
            "max_occ": max_occ,
            "occ1": max_occ == 1,
            "cnt_col": fu_counts[kind].astype(plane_dtype)[:, None],
            # Unit count and issue width stacked to match the (2, N, W)
            # windows the search gathers: one comparison covers both.
            "cnt2": np.stack([fu_counts[kind].astype(plane_dtype)[:, None],
                              bw_col]),
            "sel2": np.array([[kind], [4]]),
            "epoch": -1,
        }
        if max_occ > 1:
            rec["off_occ"] = np.arange(max_occ)
            rec["occ_mask"] = (np.arange(max_occ)[None, :]
                               < occ[:, None]).astype(plane_dtype)
            # Per scan width: window offsets, and gather indices into the
            # zero-prefixed cumulative conflict counts (window start s is
            # feasible iff the counts at s and s + occ coincide).
            rec["levels"] = [
                (starts, np.arange(starts)[None, :] + occ[:, None])
                for starts in _START_WIDTHS
            ]
        shape_recs.append(rec)

    # --- histories ------------------------------------------------------
    # Rename and commit times interleave in one array (rename at row
    # ``2 * i``, commit at ``2 * i + 1``) so the fetch-bandwidth, ROB and
    # commit-width bounds of one instruction are a single flat gather.
    # One pad row block encodes "instruction i - width does not exist":
    # rename pad -1 (bound (-1) + 1 = 0), commit pad 0 — both no-ops
    # against candidates that are always >= 0.
    pad = int(max(fetch_width.max(), rob_size.max(), commit_width.max()))
    hist = np.zeros((2 * (pad + n), num_configs), dtype=np.int64)
    hist[0:2 * pad:2] = -1
    hist_flat = hist.ravel()
    back3 = np.concatenate([2 * (pad - fetch_width),
                            2 * (pad - rob_size) + 1,
                            2 * (pad - commit_width) + 1]).astype(np.int32)
    hist_idx = ((2 * np.arange(n, dtype=np.int32)[:, None] + back3[None, :])
                * np.int32(num_configs)
                + np.tile(nidx, 3)[None, :].astype(np.int32))
    adj3 = np.concatenate([np.ones(num_configs, dtype=np.int64),
                           np.zeros(num_configs, dtype=np.int64),
                           np.ones(num_configs, dtype=np.int64)])

    reg_ready = np.zeros((num_configs, max(1, lowered.num_regs)),
                         dtype=np.int64)

    # Queue slot values are issue cycles; a sound per-row increment bound
    # gives a cycle ceiling that usually lets the slot matrices use int32,
    # halving the bytes every queue scan touches.
    max_lat_all = max((int(r["lat"].max()) for r in shape_recs), default=1)
    max_occ_all = max((r["max_occ"] for r in shape_recs), default=1)
    cycle_ceiling = (n + 1) * (max_lat_all + max_occ_all + 2) + 16
    slot_dtype = (np.dtype(np.int32) if cycle_ceiling < 2 ** 31 - 1
                  else np.dtype(np.int64))
    queues = [_QueueState(caps, slot_dtype) for caps in queue_caps]

    # Rename pools: push history per pool, pre-padded with `pool pad` rows
    # of -1 so the sliding-window gather needs no emptiness branch; the
    # capacity-0 (unconstrained) offset underflows far below zero and the
    # clamp lands it on a pad row.  The flat gather index of every future
    # push is precomputed in one vectorised shot per pool.
    num_pools = len(REG_POOL_ORDER)
    pool_pushes = [int(np.count_nonzero(lowered.dst_pool_flat == p))
                   for p in range(num_pools)]
    pool_pads = [max(1, int(caps.max())) for caps in rename_caps]
    pool_hist = [np.full((pool_pads[p] + pool_pushes[p], num_configs), -1,
                         dtype=np.int64)
                 for p in range(num_pools)]
    pool_flat = [h.ravel() for h in pool_hist]
    pool_idx = [
        (np.maximum(np.arange(pool_pushes[p])[:, None]
                    + (pool_pads[p] - np.where(rename_caps[p] > 0,
                                               rename_caps[p], _HUGE)),
                    0) * num_configs + nidx[None, :]).astype(np.int32)
        for p in range(num_pools)
    ]
    pool_count = [0] * num_pools

    # Busy planes (4 FU kinds + issue bandwidth) over a growable cycle
    # horizon.  The initial capacity assumes a handful of cycles per
    # instruction (amply true of every real trace); a high-latency
    # configuration that outruns it doubles the horizon — the narrow dtype
    # keeps those copies cheap.
    capacity = max(4096, 2 * n + 1024)
    busy = np.zeros((5, num_configs, capacity), dtype=plane_dtype)
    busy_flat = busy.ravel()
    epoch = 0
    windows: dict = {}

    def grow(need: int) -> None:
        nonlocal busy, busy_flat, capacity, epoch
        new_capacity = max(2 * capacity, need + 1024)
        grown = np.zeros((5, num_configs, new_capacity), dtype=plane_dtype)
        grown[:, :, :capacity] = busy
        busy = grown
        busy_flat = busy.ravel()
        capacity = new_capacity
        epoch += 1
        windows.clear()

    def window_view(width: int) -> np.ndarray:
        """Width-``width`` sliding-window view of the flat busy planes.

        The search windows are contiguous runs of one config's cycle row,
        so gathering rows of this view needs only one start index per
        (plane, config) instead of a full per-cycle index matrix.
        """
        view = windows.get(width)
        if view is None:
            view = np.lib.stride_tricks.sliding_window_view(busy_flat,
                                                            width)
            windows[width] = view
        return view

    def plane_bases(rec):
        """Flat-index bases of the shape's FU plane and the bandwidth
        plane, cached per capacity epoch."""
        if rec["epoch"] != epoch:
            kind = rec["kind"]
            rec["base2"] = ((rec["sel2"] * num_configs + nidx)
                            * capacity)
            rec["basek"] = (kind * num_configs + nidx) * capacity
            rec["baseb"] = (4 * num_configs + nidx) * capacity
            rec["epoch"] = epoch
        return rec

    # Stall attribution telescopes: each rename stage only ever *raises*
    # the candidate, and the scalar loop charges each stage the amount it
    # raised it by.  Summing the candidate after the fetch, ROB and queue
    # stages (the final value is the rename history itself) makes every
    # per-stage stall a running-sum difference at the end — one in-place
    # add per stage in the loop, O(N) memory.
    sum_fetch = np.zeros(num_configs, dtype=np.int64)
    sum_rob = np.zeros(num_configs, dtype=np.int64)
    sum_queue = np.zeros(num_configs, dtype=np.int64)

    prev_rename = np.zeros(num_configs, dtype=np.int64)
    prev_commit = np.zeros(num_configs, dtype=np.int64)

    if record_timeline:
        tl = np.empty((5, n, num_configs), dtype=np.int64)

    zero_col = np.zeros((num_configs, 1), dtype=np.int64)
    src_indptr = lowered.src_indptr.tolist()
    src_list = lowered.src_flat.tolist()
    src_flat = lowered.src_flat
    rows = list(zip(lowered.shape_ids, lowered.dsts))
    np_maximum = np.maximum

    for i, (sid, dsts) in enumerate(rows):
        rec = shape_recs[sid]

        # ---- rename ------------------------------------------------
        bounds = hist_flat.take(hist_idx[i])
        bounds += adj3
        candidate = np_maximum(prev_rename, bounds[:num_configs])
        sum_fetch += candidate

        candidate = np_maximum(candidate,
                               bounds[num_configs:2 * num_configs])
        sum_rob += candidate

        queue = queues[rec["queue"]]
        candidate = queue.constrain(candidate)
        sum_queue += candidate

        for _reg, pool, _acc in dsts:
            bound = pool_flat[pool].take(pool_idx[pool][pool_count[pool]])
            candidate = np_maximum(candidate, bound)

        rename_time = candidate
        hist[2 * (pad + i)] = rename_time
        prev_rename = rename_time

        # ---- ready (dataflow) ---------------------------------------
        ready = rename_time + 1
        lo, hi = src_indptr[i], src_indptr[i + 1]
        if hi - lo == 1:
            np_maximum(ready, reg_ready[:, src_list[lo]], out=ready)
        elif hi > lo:
            operands = reg_ready[:, src_flat[lo:hi]]
            np_maximum(ready, operands.max(1), out=ready)

        # ---- issue ---------------------------------------------------
        # Smallest cycle >= ready with a functional unit free for the
        # whole occupancy window and an issue slot free in the start
        # cycle — the same fixed point the scalar search converges to,
        # found by scanning a window of candidate cycles per iteration
        # for all configs at once.
        rec = plane_bases(rec)
        if rec["occ1"]:
            # First probe: one window over every config (nearly always
            # conclusive).  Configurations that miss continue on a shrinking
            # active subset with escalating window widths, so the wide scans
            # a bandwidth-saturated 1-wide core needs never touch the rest
            # of the batch.
            width = _OCC1_WIDTHS[0]
            top = int(ready.max()) + width
            if top >= capacity:
                grow(top)
                rec = plane_bases(rec)
            planes = window_view(width)[rec["base2"] + ready]
            pair = planes < rec["cnt2"]
            ok = pair[0] & pair[1]
            first = ok.argmax(1)
            found = ok[nidx, first]
            issue = ready + first
            if not found.all():
                act = np.flatnonzero(~found)
                t_act = ready[act] + width
                base2_act = rec["base2"][:, act]
                cnt2_act = rec["cnt2"][:, act]
                level = 1
                while True:
                    width = _OCC1_WIDTHS[level]
                    top = int(t_act.max()) + width
                    if top >= capacity:
                        grow(top)
                        rec = plane_bases(rec)
                        base2_act = rec["base2"][:, act]
                    planes = window_view(width)[base2_act + t_act]
                    pair = planes < cnt2_act
                    ok = pair[0] & pair[1]
                    first = ok.argmax(1)
                    found = ok[nidx[:len(act)], first]
                    if found.all():
                        issue[act] = t_act + first
                        break
                    hit = np.flatnonzero(found)
                    if hit.size:
                        issue[act[hit]] = t_act[hit] + first[hit]
                        keep = np.flatnonzero(~found)
                        act = act[keep]
                        t_act = t_act[keep] + width
                        base2_act = base2_act[:, keep]
                        cnt2_act = cnt2_act[:, keep]
                    else:
                        t_act = t_act + width
                    if level < len(_OCC1_WIDTHS) - 1:
                        level += 1
            busy_flat[rec["base2"] + issue] += 1
        else:
            max_occ = rec["max_occ"]
            cnt_col = rec["cnt_col"]
            t = ready
            level = 0
            while True:
                starts, cum_end = rec["levels"][level]
                window = max_occ + starts
                top = int(t.max()) + window
                if top >= capacity:
                    grow(top)
                    rec = plane_bases(rec)
                fu_w = window_view(window)[rec["basek"] + t]
                bw_w = window_view(starts)[rec["baseb"] + t]
                conflict = fu_w >= cnt_col
                prefix = np.concatenate(
                    [zero_col, conflict.cumsum(1)], axis=1)
                run_free = (prefix[nidx_col, cum_end]
                            - prefix[:, :starts]) == 0
                ok = run_free & (bw_w < bw_col)
                first = ok.argmax(1)
                found = ok[nidx, first]
                if found.all():
                    issue = t + first
                    break
                t = t + np.where(found, first, starts)
                if level < len(_START_WIDTHS) - 1:
                    level += 1
            fu_base = rec["basek"] + issue
            busy_flat[fu_base[:, None] + rec["off_occ"]] += rec["occ_mask"]
            busy_flat[rec["baseb"] + issue] += 1
        queue.push(issue)

        # ---- complete ------------------------------------------------
        complete = issue + rec["lat"]
        if rec["acc_fwd"]:
            # MDMX-style accumulate: the accumulator feedback path lives
            # in the final adder stage (see OutOfOrderCore.run).
            acc_forward = issue + rec["occ"]
            for reg, _pool, is_acc in dsts:
                reg_ready[:, reg] = acc_forward if is_acc else complete
        else:
            for reg, _pool, _acc in dsts:
                reg_ready[:, reg] = complete

        # ---- commit --------------------------------------------------
        commit = complete + 1
        np_maximum(commit, prev_commit, out=commit)
        np_maximum(commit, bounds[2 * num_configs:], out=commit)
        hist[2 * (pad + i) + 1] = commit
        prev_commit = commit

        for _reg, pool, _acc in dsts:
            pool_hist[pool][pool_pads[pool] + pool_count[pool]] = commit
            pool_count[pool] += 1

        if record_timeline:
            tl[0, i] = rename_time
            tl[1, i] = ready
            tl[2, i] = issue
            tl[3, i] = complete
            tl[4, i] = commit

    # --- fan the columns back out into per-config results ---------------
    # Per-stage stalls telescope (see the candidate buffers above):
    # each stage's total is the difference of adjacent candidate column
    # sums, with the rename history supplying the base and final values.
    results = []
    cycles = prev_commit.tolist()
    if n:
        rename_sum = hist[2 * pad::2].sum(0)
        stall_fetch = sum_fetch - (rename_sum - prev_rename)
        stall_rob = sum_rob - sum_fetch
        stall_queue = sum_queue - sum_rob
        stall_rename = rename_sum - sum_queue
    else:
        stall_fetch = stall_rob = np.zeros(num_configs, dtype=np.int64)
        stall_queue = stall_rename = stall_fetch
    stalls = np.stack([stall_rob, stall_queue, stall_rename,
                       stall_fetch]).tolist()
    if record_timeline:
        opcode_names = [lowered.opcodes[oid] for oid in lowered.opcode_ids]
        tl_lists = tl.tolist()
    for c, config in enumerate(configs):
        result = SimResult(
            cycles=cycles[c],
            instructions=n,
            operations=lowered.total_ops,
            kernel=lowered.name,
            isa=lowered.isa,
            config_name=config.name,
            mem_latency=config.mem_latency,
            issue_width=config.issue_width,
            stall_breakdown={
                "rob": stalls[0][c],
                "issue_queue": stalls[1][c],
                "rename_regs": stalls[2][c],
                "fetch_bw": stalls[3][c],
            },
        )
        if record_timeline:
            result.timeline = [
                (opcode_names[i], tl_lists[0][i][c], tl_lists[1][i][c],
                 tl_lists[2][i][c], tl_lists[3][i][c], tl_lists[4][i][c])
                for i in range(n)
            ]
        results.append(result)
    return results
