"""Machine configurations for the timing model.

The defaults model the paper's evaluation vehicle: an R10K-like out-of-order
core at issue widths 1, 2, 4 and 8, with an idealized memory system of fixed
latency (1, 12 or 50 cycles) and no bandwidth restriction beyond a finite
number of memory ports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.isa.opclasses import OpClass, DEFAULT_LATENCIES


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of one simulated machine.

    Attributes mirror the structural parameters the paper varies (issue
    width, memory latency) plus the fixed micro-architectural assumptions
    documented in DESIGN.md.
    """

    name: str = "way4"
    #: Instructions renamed (fetched/decoded) per cycle.
    fetch_width: int = 4
    #: Instructions entering execution per cycle.
    issue_width: int = 4
    #: Instructions committed per cycle.
    commit_width: int = 4
    #: Reorder-buffer entries.
    rob_size: int = 64
    #: Issue-queue entries per domain (integer, memory, multimedia).
    int_queue_size: int = 32
    mem_queue_size: int = 32
    media_queue_size: int = 32
    #: Functional units.
    num_int_alu: int = 4
    num_int_mul: int = 1
    num_mem_ports: int = 2
    num_media_fu: int = 4
    #: Vector lanes per multimedia FU (dimension-Y elements per cycle).
    media_lanes: int = 1
    #: Dimension-Y elements transferred per memory port per cycle for
    #: matrix loads/stores (the paper's "memory port of wide N").
    mem_port_width: int = 2
    #: Main memory / cache latency in cycles (the paper sweeps 1, 12, 50).
    mem_latency: int = 1
    #: Extra pipeline latency of a MOM pipelined accumulator reduction
    #: (section 3.1: "adding some additional cycles of latency").
    mom_reduction_latency: int = 4
    #: Physical registers (total, including architectural) per file.
    phys_int_regs: int = 80
    phys_media_regs: int = 64
    phys_matrix_regs: int = 24
    phys_acc_regs: int = 8
    #: Architectural register counts (used to derive the rename head-room).
    arch_int_regs: int = 32
    arch_media_regs: int = 32
    arch_matrix_regs: int = 16
    arch_acc_regs: int = 4
    #: Execution latencies per operation class.
    latencies: Dict[OpClass, int] = field(default_factory=lambda: dict(DEFAULT_LATENCIES))

    def latency_of(self, opclass: OpClass) -> int:
        """Base execution latency of an operation class.

        Memory classes return :attr:`mem_latency` for loads; stores complete
        in one cycle (the idealized memory never stalls retirement).
        """
        if opclass.is_load:
            return self.mem_latency
        if opclass.is_store:
            return 1
        return self.latencies.get(opclass, 1)

    def with_updates(self, **kwargs) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def for_way(cls, way: int, mem_latency: int = 1, **overrides) -> "MachineConfig":
        """Standard configuration for a ``way``-issue machine.

        Functional-unit counts, queue and ROB sizes and physical-register
        counts scale with the issue width, following the usual practice for
        width-scaling studies (and keeping the 4-way point close to an R10K
        with added multimedia units, as in the paper).
        """
        if way < 1:
            raise ValueError("issue width must be >= 1")
        cfg = cls(
            name=f"way{way}",
            fetch_width=way,
            issue_width=way,
            commit_width=way,
            rob_size=16 * way,
            int_queue_size=8 * way,
            mem_queue_size=8 * way,
            media_queue_size=8 * way,
            num_int_alu=way,
            num_int_mul=max(1, way // 4),
            num_mem_ports=max(1, way // 2),
            # One multimedia pipe per issue slot: peak packed-word throughput
            # (64 bits/cycle per pipe) is then identical for MMX/MDMX
            # instructions and MOM vector elements, which is the level playing
            # field the paper's comparison assumes.
            num_media_fu=way,
            media_lanes=1,
            mem_port_width=2,
            mem_latency=mem_latency,
            phys_int_regs=32 + 12 * way,
            phys_media_regs=32 + 12 * way,
            phys_matrix_regs=16 + 8 * way,
            # Accumulators are fully renamed; a tight physical-accumulator
            # pool would serialise MDMX far beyond the architectural
            # recurrence the paper describes.
            phys_acc_regs=4 + 8 * way,
        )
        if overrides:
            cfg = cfg.with_updates(**overrides)
        return cfg


#: The four issue-width configurations used by Figure 4 of the paper.
WAY_CONFIGS: Dict[int, MachineConfig] = {
    way: MachineConfig.for_way(way) for way in (1, 2, 4, 8)
}

#: The three memory latencies used by Figure 5 of the paper (4-way core).
FIGURE5_LATENCIES = (1, 12, 50)
