"""Backend selection for batch simulation: object / lowered / vector.

The timing package has three executions of the same interval model:

``object``
    :meth:`~repro.timing.core.OutOfOrderCore.run` — the readable reference
    loop over :class:`~repro.trace.instruction.DynInstr` objects.
``lowered``
    :meth:`~repro.timing.core.OutOfOrderCore.run_lowered` — the flat-array
    interpreter, ~3x the object loop per configuration.
``vector``
    :func:`~repro.timing.vector.run_lowered_batch`'s array program — one
    NumPy pass over the instruction rows advancing every configuration in
    the batch at once; wins beyond
    :data:`~repro.timing.vector.VECTOR_MIN_BATCH` configurations.

All three are bit-identical (pinned by the golden snapshots and the
equivalence suites), so picking one is purely a performance decision.
:func:`simulate_batch` is that decision point: the sweep engine routes
every trace-sharing group of configurations through it, and the CLI's
``--backend`` flag plumbs down to the ``backend`` argument.  The default
``auto`` resolves to ``vector`` for large batches and ``lowered``
otherwise (:func:`resolve_execution`).
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.timing.config import MachineConfig
from repro.timing.core import OutOfOrderCore
from repro.timing.lowered import LoweredTrace
from repro.timing.results import SimResult
from repro.timing.vector import _auto_uses_vector, run_lowered_batch

__all__ = ["BACKENDS", "resolve_execution", "simulate_batch"]

#: Selectable timing backends (``auto`` resolves per call).
BACKENDS = ("auto", "object", "lowered", "vector")


def resolve_execution(backend: str, num_configs: int,
                      num_instructions: int = 0) -> str:
    """The concrete backend a ``simulate_batch`` call will execute.

    ``auto`` resolves to ``"vector"`` when the batch reaches the live
    loop-vs-vector cut-over — the machine's persisted ``repro calibrate``
    measurement when one exists, the
    :data:`~repro.timing.vector.VECTOR_MIN_BATCH` constant otherwise (see
    :func:`~repro.timing.vector.effective_min_batch`) — and the
    ``instructions x configs`` working set fits the vector backend's
    :data:`~repro.timing.vector.VECTOR_AUTO_CELL_BUDGET` memory budget;
    ``"lowered"`` otherwise.  Explicit names resolve to themselves.
    Raises ``ValueError`` for an unknown backend name.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown timing backend {backend!r}; choose from {BACKENDS}")
    if backend == "auto":
        return ("vector"
                if _auto_uses_vector(num_configs, num_instructions)
                else "lowered")
    return backend


def simulate_batch(trace: Union["Trace", LoweredTrace],
                   configs: Sequence[MachineConfig],
                   backend: str = "auto",
                   record_timeline: bool = False) -> List[SimResult]:
    """Simulate ``trace`` under every configuration with one backend.

    Parameters
    ----------
    trace:
        A :class:`~repro.trace.container.Trace` (lowered on demand via its
        memoised :meth:`~repro.trace.container.Trace.lower`) or an
        already-compiled :class:`~repro.timing.lowered.LoweredTrace`.
        The ``object`` backend needs the original trace and raises
        ``TypeError`` when given only a lowering.
    configs:
        Machine configurations; one :class:`SimResult` per entry is
        returned, in order.  Duplicates are legal.
    backend:
        One of :data:`BACKENDS`.  Results are identical across backends;
        only the wall time differs.
    record_timeline:
        Attach each result's per-instruction pipeline timeline as a
        ``timeline`` attribute (as the scalar cores expose on themselves).
    """
    execution = resolve_execution(backend, len(configs), len(trace))
    if execution == "object":
        if isinstance(trace, LoweredTrace):
            raise TypeError(
                "the object backend replays DynInstr objects and cannot "
                "run from a LoweredTrace; pass the original Trace")
        results = []
        for config in configs:
            core = OutOfOrderCore(config)
            result = core.run(trace, record_timeline=record_timeline)
            if record_timeline:
                result.timeline = core.timeline
            results.append(result)
        return results
    lowered = trace if isinstance(trace, LoweredTrace) else trace.lower()
    return run_lowered_batch(lowered, configs,
                             record_timeline=record_timeline,
                             force_vector=(execution == "vector"))
