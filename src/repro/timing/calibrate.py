"""Startup micro-calibration of the vector backend's batch cut-over.

:data:`~repro.timing.vector.VECTOR_MIN_BATCH` is a constant measured on one
development machine: the batch size at which the NumPy array program
(:func:`~repro.timing.vector.run_lowered_batch`) starts beating a loop of
the per-config lowered interpreter.  The real cut-over moves with NumPy
dispatch overhead, CPU speed and allocator behaviour, so ``repro
calibrate`` measures it *on the machine at hand*: it times loop-vs-vector
on a synthetic trace across a ladder of batch sizes, picks the smallest
size from which the array program stays ahead, and persists the result as
a small JSON file.  :func:`~repro.timing.vector.effective_min_batch` (and
through it :func:`~repro.timing.dispatch.resolve_execution`'s ``auto``
rule) reads the persisted value lazily on first use; the constant remains
the fallback whenever no calibration exists.

The calibration file lives at ``~/.cache/repro/calibration.json`` by
default; the ``REPRO_CALIBRATION`` environment variable overrides the
path, and setting it to the empty string or ``off`` disables reading (the
test suite does this so routing assertions stay hermetic).  Stale or
malformed files are ignored, never an error — exactly the trace cache's
tolerance rules.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.common.atomicio import atomic_write_json

__all__ = ["CALIBRATION_ENV", "CALIBRATION_FORMAT", "DEFAULT_BATCH_LADDER",
           "calibration_path", "load_calibration", "measure_vector_cutover",
           "save_calibration", "synthetic_trace"]

#: Version of the calibration file layout; readers ignore other formats.
CALIBRATION_FORMAT = 1

#: Environment variable overriding the calibration file path ("" / "off"
#: disables reading altogether).
CALIBRATION_ENV = "REPRO_CALIBRATION"

#: Batch sizes the measurement ladder climbs (bracketing the constant's
#: 64 from well below to well above).
DEFAULT_BATCH_LADDER = (8, 16, 24, 32, 48, 64, 96, 128, 192)

#: Sanity clamp for persisted cut-overs: anything outside is ignored.
_MIN_SANE, _MAX_SANE = 2, 1 << 20


def calibration_path(path: Optional[str] = None) -> Optional[str]:
    """Resolve the calibration file path (None = reading disabled)."""
    if path is not None:
        return os.fspath(path)
    env = os.environ.get(CALIBRATION_ENV)
    if env is not None:
        if env.strip().lower() in ("", "off", "none", "0"):
            return None
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "calibration.json")


def synthetic_trace(num_instructions: int = 1536):
    """A deterministic mixed-opclass trace for the timing measurement.

    Built through the real MMX builder so the instruction mix (scalar
    address arithmetic, packed ALU/multiply, multimedia loads/stores,
    branches) resembles the kernels the sweep engine actually routes —
    while depending on no kernel or workload data.
    """
    from repro.common.datatypes import S16, U8
    from repro.frontend.builders import make_builder

    b = make_builder("mmx", name="calibration")
    base = b.machine.memory.alloc(4096)
    b.li(1, base)
    b.li(2, 64)
    while len(b.trace) < num_instructions:
        b.addi(3, 1, 8)
        b.movq_ld(0, 3, 0, U8)
        b.movq_ld(1, 1, 8, U8)
        b.padd(2, 0, 1, U8, "sat")
        b.psub(3, 0, 1, U8, "wrap")
        b.pmull(4, 2, 3, S16)
        b.pmax(5, 2, 3, U8)
        b.movq_st(4, 1, 16, U8)
        b.ldbu(4, 1, 24)
        b.addi(4, 4, 1)
        b.stb(4, 1, 24)
        b.subi(2, 2, 1)
        b.branch(2, "bgt")
    return b.trace


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_vector_cutover(lowered=None,
                           batch_sizes: Sequence[int] = DEFAULT_BATCH_LADDER,
                           repeats: int = 3) -> Dict[str, Any]:
    """Time loop-vs-vector across ``batch_sizes`` and pick the cut-over.

    Returns a JSON-able report: per-size loop/vector wall times and the
    chosen ``vector_min_batch`` — the smallest ladder size from which the
    array program stays ahead for every larger measured size (so one noisy
    win cannot pull the cut-over down).  If the array program never wins
    within the ladder, the cut-over is pinned just above it.
    """
    from repro.timing.config import MachineConfig
    from repro.timing.vector import run_lowered_batch

    if lowered is None:
        lowered = synthetic_trace().lower()
    sizes = sorted(set(int(n) for n in batch_sizes))
    if not sizes or sizes[0] < 1:
        raise ValueError(f"batch sizes must be positive, got {batch_sizes}")
    configs = [MachineConfig.for_way(4, mem_latency=1 + (i % 4))
               for i in range(sizes[-1])]
    rows: List[Dict[str, Any]] = []
    for n in sizes:
        batch = configs[:n]
        loop_s = _best_of(
            lambda: run_lowered_batch(lowered, batch, force_vector=False),
            repeats)
        vector_s = _best_of(
            lambda: run_lowered_batch(lowered, batch, force_vector=True),
            repeats)
        rows.append({"batch": n, "loop_s": loop_s, "vector_s": vector_s,
                     "vector_wins": vector_s <= loop_s})
    cutover = 2 * sizes[-1]
    for i, row in enumerate(rows):
        if all(r["vector_wins"] for r in rows[i:]):
            cutover = row["batch"]
            break
    return {
        "vector_min_batch": cutover,
        "trace_instructions": lowered.num_instructions,
        "repeats": repeats,
        "measurements": rows,
    }


def save_calibration(result: Dict[str, Any],
                     path: Optional[str] = None) -> str:
    """Persist a :func:`measure_vector_cutover` report; returns the path.

    The write is atomic (tempfile + rename) and stamps the file format —
    readers on another format fall back to the constant.
    """
    target = calibration_path(path)
    if target is None:
        raise ValueError(
            f"calibration persistence is disabled ({CALIBRATION_ENV} is "
            f"off); pass an explicit path")
    entry = {
        "format": CALIBRATION_FORMAT,
        "created": time.time(),
        **result,
    }
    os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    atomic_write_json(target, entry, indent=2, sort_keys=True)
    return target


def load_calibration(path: Optional[str] = None) -> Optional[int]:
    """The persisted ``vector_min_batch``, or None.

    None for: reading disabled, file absent/unreadable, unknown format, or
    a value outside the sanity clamp — all of which leave the caller on
    the measured constant.
    """
    target = calibration_path(path)
    if target is None:
        return None
    try:
        with open(target, "r", encoding="utf-8") as f:
            entry = json.load(f)
        if entry.get("format") != CALIBRATION_FORMAT:
            return None
        value = int(entry["vector_min_batch"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if not _MIN_SANE <= value <= _MAX_SANE:
        return None
    return value
