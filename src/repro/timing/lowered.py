"""Trace lowering: compile a ``Trace`` into flat arrays for fast simulation.

The object-level simulation loop (:meth:`~repro.timing.core.OutOfOrderCore.run`)
pays, for every dynamic instruction, a series of costs that are *invariant
across the many machine configurations each trace is simulated under*:
attribute lookups on :class:`~repro.trace.instruction.DynInstr`, enum hashing
to find the functional-unit pool and issue queue, and — worst of all —
hashing frozen-dataclass :class:`~repro.trace.instruction.RegRef` keys into
the register scoreboard dict.

This module performs that work **once per trace**.  :func:`lower_trace`
compiles a trace into a :class:`LoweredTrace` of parallel flat arrays:

* a *shape table* of the distinct ``(opclass, vly, non_pipelined)`` triples
  (per configuration these resolve to occupancy, completion latency,
  functional-unit pool and issue queue — the resolution happens once per
  shape inside :meth:`~repro.timing.core.OutOfOrderCore.run_lowered`, not
  once per instruction);
* one small-integer shape id per instruction;
* source operands renumbered to dense integer register ids, so the register
  scoreboard becomes a plain list indexed by ``int`` instead of a dict keyed
  by ``RegRef``;
* destination operands as ``(reg_id, rename_pool_index, is_accumulator)``
  triples — everything the rename and writeback stages need, pre-resolved;
* the per-trace operation total (configuration-independent, so the run loop
  no longer sums it).

:meth:`~repro.trace.container.Trace.lower` memoises the lowered form on the
trace instance, and the sweep engine's batching simulates every
configuration sharing a trace off one ``LoweredTrace`` — lowering cost is
amortised to ~zero per sweep point.  The lowered form also serializes
(:meth:`LoweredTrace.to_payload` / :meth:`LoweredTrace.from_payload`) so the
trace cache can store it alongside the trace; :data:`LOWERING_VERSION`
stamps those payloads and a mismatch simply falls back to re-lowering.

Cycle counts are **bit-identical** to the object loop — the golden snapshot
suite and the equivalence tests in ``tests/timing/test_lowered.py`` pin that.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.isa.opclasses import OpClass, RegFile

__all__ = ["LOWERING_VERSION", "LOWERED_PAYLOAD_FORMAT", "REG_POOL_ORDER",
           "LoweredTrace", "add_lowering_hook", "remove_lowering_hook",
           "lower_trace"]

#: Version tag of the lowering pass.  Folded into every lowered payload the
#: trace cache stores; a reader that finds a different version ignores the
#: payload and re-lowers from the trace (never a correctness problem).  Bump
#: whenever the lowered representation or its payload encoding changes.
LOWERING_VERSION = "1"

#: Version of the serialized lowered-payload layout (mirrors
#: ``TRACE_PAYLOAD_FORMAT``; readers treat an unknown format as absent).
LOWERED_PAYLOAD_FORMAT = 1

#: Fixed order in which :meth:`OutOfOrderCore.run_lowered` materialises the
#: rename slot pools; a lowered destination's ``pool`` field is an index into
#: this tuple.
REG_POOL_ORDER: Tuple[RegFile, ...] = (RegFile.INT, RegFile.MEDIA,
                                       RegFile.MATRIX, RegFile.ACC,
                                       RegFile.VL)

_POOL_INDEX = {file: i for i, file in enumerate(REG_POOL_ORDER)}

#: Observers called as ``hook(trace_name, isa, num_instructions)`` every time
#: a trace is actually *lowered* (not served from a memo or a cached
#: payload).  The sweep benchmarks register a counter here to assert that
#: lowering is amortised: one lowering per distinct trace per sweep.
_LOWERING_HOOKS: List[Callable[[str, str, int], None]] = []


def add_lowering_hook(hook: Callable[[str, str, int], None]
                      ) -> Callable[[str, str, int], None]:
    """Register an observer for lowering passes; returns ``hook``."""
    _LOWERING_HOOKS.append(hook)
    return hook


def remove_lowering_hook(hook: Callable[[str, str, int], None]) -> None:
    """Unregister a previously added lowering hook (no-op if absent)."""
    try:
        _LOWERING_HOOKS.remove(hook)
    except ValueError:
        pass


def _notify_lowered(lowered: "LoweredTrace") -> None:
    """Fire the lowering hooks for one fresh compilation.

    Called by :func:`lower_trace` and by the column recorder's zero-copy
    adoption (:meth:`repro.trace.columns.TraceColumns.adopt_lowered`) —
    both are the one compile event of their trace, so the sweep tests'
    "one lowering per distinct trace" accounting holds on either path.
    """
    for hook in _LOWERING_HOOKS:
        hook(lowered.name, lowered.isa, lowered.num_instructions)


class LoweredTrace:
    """The flat-array compilation of one :class:`~repro.trace.container.Trace`.

    All per-instruction sequences are parallel (index ``i`` describes dynamic
    instruction ``i``); everything configuration-dependent is deferred to the
    shape table, which :meth:`~repro.timing.core.OutOfOrderCore.run_lowered`
    resolves once per simulation.
    """

    __slots__ = ("name", "isa", "num_instructions", "total_ops", "num_regs",
                 "shapes", "shape_ids", "srcs", "dsts", "opcodes",
                 "opcode_ids", "_columns", "_same_pool_multi_dst")

    def __init__(self, name: str, isa: str, num_instructions: int,
                 total_ops: int, num_regs: int,
                 shapes: List[Tuple[OpClass, int, bool]],
                 shape_ids: List[int],
                 srcs: List[Tuple[int, ...]],
                 dsts: List[Tuple[Tuple[int, int, bool], ...]],
                 opcodes: List[str],
                 opcode_ids: List[int]) -> None:
        self.name = name
        self.isa = isa
        self.num_instructions = num_instructions
        self.total_ops = total_ops
        self.num_regs = num_regs
        #: Distinct ``(opclass, vly, non_pipelined)`` triples.
        self.shapes = shapes
        #: Per instruction: index into :attr:`shapes`.
        self.shape_ids = shape_ids
        #: Per instruction: dense source register ids.
        self.srcs = srcs
        #: Per instruction: ``(reg_id, pool_index, is_accumulator)`` per dst.
        self.dsts = dsts
        #: Interned opcode mnemonics (timeline recording only).
        self.opcodes = opcodes
        #: Per instruction: index into :attr:`opcodes`.
        self.opcode_ids = opcode_ids
        # Lazily-built ndarray columns / trace classifications (below).
        self._columns = None
        self._same_pool_multi_dst = None

    # ------------------------------------------------------------------
    # ndarray columns
    # ------------------------------------------------------------------
    # The same data as flat NumPy columns, with the ragged srcs/dsts rows
    # in CSR form (``*_flat`` values + an ``indptr`` of row boundaries:
    # row ``i`` is ``flat[indptr[i]:indptr[i + 1]]``).  The vector batch
    # backend (repro.timing.vector) consumes these; the list rows remain
    # the canonical form for the payload round-trip and the per-config
    # lowered interpreter, so the columns are built lazily on first use
    # (and never on the lowered/object-only simulation paths).

    def _build_columns(self) -> dict:
        cols = self._columns
        if cols is not None:
            return cols
        n = self.num_instructions
        srcs, dsts = self.srcs, self.dsts
        src_indptr = np.zeros(n + 1, dtype=np.int32)
        dst_indptr = np.zeros(n + 1, dtype=np.int32)
        if n:
            np.cumsum(np.fromiter((len(row) for row in srcs),
                                  dtype=np.int32, count=n),
                      out=src_indptr[1:])
            np.cumsum(np.fromiter((len(row) for row in dsts),
                                  dtype=np.int32, count=n),
                      out=dst_indptr[1:])
        num_dsts = int(dst_indptr[-1])
        cols = self._columns = {
            "shape_id_col": np.asarray(self.shape_ids, dtype=np.int32),
            "opcode_id_col": np.asarray(self.opcode_ids, dtype=np.int32),
            "src_indptr": src_indptr,
            "src_flat": np.fromiter(
                (r for row in srcs for r in row), dtype=np.int32,
                count=int(src_indptr[-1])),
            "dst_indptr": dst_indptr,
            "dst_reg_flat": np.fromiter(
                (reg for row in dsts for reg, _pool, _acc in row),
                dtype=np.int32, count=num_dsts),
            "dst_pool_flat": np.fromiter(
                (pool for row in dsts for _reg, pool, _acc in row),
                dtype=np.int32, count=num_dsts),
            "dst_acc_flat": np.fromiter(
                (acc for row in dsts for _reg, _pool, acc in row),
                dtype=np.bool_, count=num_dsts),
        }
        return cols

    @property
    def shape_id_col(self) -> np.ndarray:
        """Per instruction: :attr:`shape_ids` as an int32 column."""
        return self._build_columns()["shape_id_col"]

    @property
    def opcode_id_col(self) -> np.ndarray:
        """Per instruction: :attr:`opcode_ids` as an int32 column."""
        return self._build_columns()["opcode_id_col"]

    @property
    def src_flat(self) -> np.ndarray:
        """CSR values of :attr:`srcs` (see :attr:`src_indptr`)."""
        return self._build_columns()["src_flat"]

    @property
    def src_indptr(self) -> np.ndarray:
        """CSR row boundaries of :attr:`srcs`."""
        return self._build_columns()["src_indptr"]

    @property
    def dst_reg_flat(self) -> np.ndarray:
        """CSR destination register ids (see :attr:`dst_indptr`)."""
        return self._build_columns()["dst_reg_flat"]

    @property
    def dst_pool_flat(self) -> np.ndarray:
        """CSR destination rename-pool indices (see :attr:`dst_indptr`)."""
        return self._build_columns()["dst_pool_flat"]

    @property
    def dst_acc_flat(self) -> np.ndarray:
        """CSR destination accumulator flags (see :attr:`dst_indptr`)."""
        return self._build_columns()["dst_acc_flat"]

    @property
    def dst_indptr(self) -> np.ndarray:
        """CSR row boundaries of :attr:`dsts`."""
        return self._build_columns()["dst_indptr"]

    @property
    def has_same_pool_multi_dst(self) -> bool:
        """Whether any instruction writes two destinations in one rename
        pool.

        No kernel builder emits such instructions, but hand-built traces
        can.  The vector batch backend's sliding-window rename pools
        assume at most one same-pool destination per instruction (a full
        pool pops exactly once per push), so it declines these traces and
        the per-config interpreter runs instead.  Memoised: one pass over
        the destination rows on first use.
        """
        known = self._same_pool_multi_dst
        if known is None:
            known = self._same_pool_multi_dst = any(
                len(row) > 1
                and len({pool for _reg, pool, _acc in row}) < len(row)
                for row in self.dsts)
        return known

    def __len__(self) -> int:
        return self.num_instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LoweredTrace(name={self.name!r}, isa={self.isa!r}, "
                f"n={self.num_instructions}, shapes={len(self.shapes)}, "
                f"regs={self.num_regs})")

    # ------------------------------------------------------------------
    # compact (de)serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Serialize to a compact JSON-able dict.

        Like :meth:`Trace.to_payload`, whole per-instruction rows
        ``(shape_id, srcs, dsts, opcode_id)`` are deduplicated into a pool —
        kernels are loops, so the dynamic sequence reuses a few hundred
        distinct rows.  Destination triples flatten to
        ``[reg, pool, is_acc, ...]`` integer runs.
        """
        pool: Dict[tuple, int] = {}
        sequence: List[int] = []
        for row in zip(self.shape_ids, self.srcs, self.dsts, self.opcode_ids):
            index = pool.setdefault(row, len(pool))
            sequence.append(index)
        return {
            "format": LOWERED_PAYLOAD_FORMAT,
            "lowering_version": LOWERING_VERSION,
            "name": self.name,
            "isa": self.isa,
            "num_instructions": self.num_instructions,
            "total_ops": self.total_ops,
            "num_regs": self.num_regs,
            "shapes": [[opclass.value, vly, int(non_pipelined)]
                       for opclass, vly, non_pipelined in self.shapes],
            "opcodes": list(self.opcodes),
            "pool": [
                [sid, list(srcs),
                 [x for reg, pi, acc in dsts for x in (reg, pi, int(acc))],
                 oid]
                for sid, srcs, dsts, oid in pool
            ],
            "instrs": sequence,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "LoweredTrace":
        """Reconstruct a lowered trace from :meth:`to_payload` output.

        Raises ``ValueError`` on an unknown payload format, a lowering
        version other than the live :data:`LOWERING_VERSION`, or any
        internal inconsistency (instruction count vs row sequence, out-of-
        range shape/register/pool/opcode ids) — the timing backend trusts a
        revived lowering completely, so a corrupt-but-parseable payload
        must be rejected here rather than silently simulate wrong numbers.
        Callers (the trace cache) treat all of that, along with
        ``KeyError``/``IndexError``/``TypeError`` from malformed rows, as
        "no lowered payload" and re-lower from the trace.
        """
        if payload.get("format") != LOWERED_PAYLOAD_FORMAT:
            raise ValueError(
                f"unknown lowered payload format {payload.get('format')!r}")
        if payload.get("lowering_version") != LOWERING_VERSION:
            raise ValueError(
                f"lowered payload version {payload.get('lowering_version')!r} "
                f"!= live lowering version {LOWERING_VERSION!r}")
        shapes = [(OpClass(value), vly, bool(non_pipelined))
                  for value, vly, non_pipelined in payload["shapes"]]
        num_regs = payload["num_regs"]
        num_opcodes = len(payload["opcodes"])
        num_pools = len(REG_POOL_ORDER)
        shape_ids: List[int] = []
        srcs: List[Tuple[int, ...]] = []
        dsts: List[Tuple[Tuple[int, int, bool], ...]] = []
        opcode_ids: List[int] = []
        pool = []
        for sid, row_srcs, flat_dsts, oid in payload["pool"]:
            row_dsts = tuple(
                (flat_dsts[j], flat_dsts[j + 1], bool(flat_dsts[j + 2]))
                for j in range(0, len(flat_dsts), 3))
            if not (0 <= sid < len(shapes) and 0 <= oid < num_opcodes):
                raise ValueError("lowered payload row references an unknown "
                                 "shape or opcode")
            if (len(flat_dsts) % 3 != 0
                    or any(not 0 <= r < num_regs for r in row_srcs)
                    or any(not (0 <= reg < num_regs and 0 <= pi < num_pools)
                           for reg, pi, _acc in row_dsts)):
                raise ValueError("lowered payload row has out-of-range "
                                 "register or pool ids")
            pool.append((sid, tuple(row_srcs), row_dsts, oid))
        for index in payload["instrs"]:
            sid, row_srcs, row_dsts, oid = pool[index]
            shape_ids.append(sid)
            srcs.append(row_srcs)
            dsts.append(row_dsts)
            opcode_ids.append(oid)
        if len(shape_ids) != payload["num_instructions"]:
            raise ValueError(
                f"lowered payload claims {payload['num_instructions']} "
                f"instructions but encodes {len(shape_ids)}")
        return cls(
            name=payload["name"],
            isa=payload["isa"],
            num_instructions=payload["num_instructions"],
            total_ops=payload["total_ops"],
            num_regs=payload["num_regs"],
            shapes=shapes,
            shape_ids=shape_ids,
            srcs=srcs,
            dsts=dsts,
            opcodes=list(payload["opcodes"]),
            opcode_ids=opcode_ids,
        )


def lower_trace(trace) -> LoweredTrace:
    """Compile ``trace`` into a :class:`LoweredTrace`.

    Pure function of the trace: register ids are assigned densely in first-
    use order, shapes and opcodes are interned in first-use order, so
    lowering the same trace twice yields structurally identical results.
    Prefer :meth:`Trace.lower`, which memoises the result on the trace.
    """
    reg_ids: Dict[Any, int] = {}
    shape_table: Dict[Tuple[OpClass, int, bool], int] = {}
    opcode_table: Dict[str, int] = {}
    shapes: List[Tuple[OpClass, int, bool]] = []
    opcodes: List[str] = []
    shape_ids: List[int] = []
    srcs_rows: List[Tuple[int, ...]] = []
    dsts_rows: List[Tuple[Tuple[int, int, bool], ...]] = []
    opcode_ids: List[int] = []
    total_ops = 0
    acc_file = RegFile.ACC

    for instr in trace:
        total_ops += instr.ops
        shape = (instr.opclass, instr.vly, instr.non_pipelined)
        sid = shape_table.get(shape)
        if sid is None:
            sid = shape_table[shape] = len(shapes)
            shapes.append(shape)
        shape_ids.append(sid)

        src_row = []
        for ref in instr.srcs:
            rid = reg_ids.get(ref)
            if rid is None:
                rid = reg_ids[ref] = len(reg_ids)
            src_row.append(rid)
        srcs_rows.append(tuple(src_row))

        dst_row = []
        for ref in instr.dsts:
            rid = reg_ids.get(ref)
            if rid is None:
                rid = reg_ids[ref] = len(reg_ids)
            dst_row.append((rid, _POOL_INDEX[ref.file], ref.file is acc_file))
        dsts_rows.append(tuple(dst_row))

        oid = opcode_table.get(instr.opcode)
        if oid is None:
            oid = opcode_table[instr.opcode] = len(opcodes)
            opcodes.append(instr.opcode)
        opcode_ids.append(oid)

    lowered = LoweredTrace(
        name=trace.name,
        isa=trace.isa,
        num_instructions=len(shape_ids),
        total_ops=total_ops,
        num_regs=len(reg_ids),
        shapes=shapes,
        shape_ids=shape_ids,
        srcs=srcs_rows,
        dsts=dsts_rows,
        opcodes=opcodes,
        opcode_ids=opcode_ids,
    )
    _notify_lowered(lowered)
    return lowered
