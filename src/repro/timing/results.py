"""Simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class SimResult:
    """Outcome of simulating one trace on one machine configuration.

    Attributes
    ----------
    cycles:
        Total execution time in cycles (commit time of the last instruction).
    instructions:
        Number of dynamic instructions committed.
    operations:
        Number of elemental operations committed (the paper's NOPS).
    kernel / isa / config_name:
        Identification of the run.
    stall_breakdown:
        Cycles lost to each structural constraint, attributed at rename time
        (diagnostic only; not used by the paper's metrics).
    """

    cycles: int
    instructions: int
    operations: int
    kernel: str = ""
    isa: str = ""
    config_name: str = ""
    mem_latency: int = 1
    issue_width: int = 1
    stall_breakdown: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        """Instructions committed per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def opi(self) -> float:
        """Elemental operations per instruction."""
        return self.operations / self.instructions if self.instructions else 0.0

    @property
    def opc(self) -> float:
        """Elemental operations per cycle (IPC x OPI)."""
        return self.operations / self.cycles if self.cycles else 0.0

    def speedup_over(self, baseline: "SimResult") -> float:
        """Speed-up of this run relative to ``baseline`` (cycles ratio)."""
        if self.cycles == 0:
            return float("inf")
        return baseline.cycles / self.cycles
