"""Trace-driven out-of-order timing model.

This package plays the role of the paper's Jinks simulator: an out-of-order
superscalar core (MIPS R10K-like) extended with a multimedia register file
and dedicated multimedia/vector functional units, fed by dynamic instruction
traces and an idealized fixed-latency memory system.

The model is an *interval-style* out-of-order approximation: instructions are
processed in program order and their rename / issue / complete / commit times
are computed subject to dataflow dependences and resource constraints
(fetch-rename-commit bandwidth, ROB and issue-queue capacity, physical
registers, functional units and memory ports).  Vector and matrix
instructions occupy their functional unit / memory port for
``ceil(VL / lanes)`` cycles and deliver their result when the last element
completes.
"""

from repro.timing.config import MachineConfig, WAY_CONFIGS
from repro.timing.core import OutOfOrderCore, simulate_trace
from repro.timing.dispatch import BACKENDS, resolve_execution, simulate_batch
from repro.timing.lowered import LOWERING_VERSION, LoweredTrace, lower_trace
from repro.timing.results import SimResult
from repro.timing.vector import VECTOR_MIN_BATCH, run_lowered_batch

__all__ = [
    "BACKENDS",
    "LOWERING_VERSION",
    "LoweredTrace",
    "MachineConfig",
    "VECTOR_MIN_BATCH",
    "WAY_CONFIGS",
    "OutOfOrderCore",
    "lower_trace",
    "resolve_execution",
    "run_lowered_batch",
    "simulate_batch",
    "simulate_trace",
    "SimResult",
]
