"""Figure 5: impact of memory latency on performance (4-way core).

The paper varies the idealized memory latency over 1, 12 and 50 cycles
(perfect L1, L2 hit, main memory) and reports execution cycles for the
scalar, MMX, MDMX and MOM versions of every kernel on the 4-way core.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.experiments.runner import run_kernel
from repro.kernels.base import ISA_VARIANTS
from repro.kernels.registry import get_kernel, kernel_names
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["run_figure5", "figure5_cycles", "figure5_slowdowns"]


def run_figure5(
    kernels: Optional[Iterable[str]] = None,
    latencies: Sequence[int] = (1, 12, 50),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
) -> Dict[str, Dict[str, Dict[int, "object"]]]:
    """Run the Figure 5 sweep: ``results[kernel][isa][latency] -> RunResult``."""
    kernels = list(kernels) if kernels is not None else kernel_names()
    results: Dict[str, Dict[str, Dict[int, object]]] = {}
    for name in kernels:
        kernel = get_kernel(name)
        workload = kernel.make_workload(
            spec if spec is not None else WorkloadSpec(scale=kernel.default_scale)
        )
        per_isa: Dict[str, Dict[int, object]] = {isa: {} for isa in ISA_VARIANTS}
        for latency in latencies:
            config = MachineConfig.for_way(way, mem_latency=latency)
            for isa in ISA_VARIANTS:
                per_isa[isa][latency] = run_kernel(name, isa, config=config,
                                                   workload=workload)
        results[name] = per_isa
    return results


def figure5_cycles(results) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Reduce :func:`run_figure5` output to raw cycle counts."""
    cycles: Dict[str, Dict[str, Dict[int, int]]] = {}
    for kernel, per_isa in results.items():
        cycles[kernel] = {
            isa: {lat: run.cycles for lat, run in runs.items()}
            for isa, runs in per_isa.items()
        }
    return cycles


def figure5_slowdowns(results) -> Dict[str, Dict[str, float]]:
    """Slow-down of each ISA when memory latency goes from the smallest to
    the largest simulated value (the paper's headline latency-tolerance
    comparison)."""
    slowdowns: Dict[str, Dict[str, float]] = {}
    for kernel, per_isa in results.items():
        slowdowns[kernel] = {}
        for isa, runs in per_isa.items():
            lats = sorted(runs)
            slowdowns[kernel][isa] = runs[lats[-1]].cycles / runs[lats[0]].cycles
    return slowdowns
