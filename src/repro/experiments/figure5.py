"""Figure 5: impact of memory latency on performance (4-way core).

The paper varies the idealized memory latency over 1, 12 and 50 cycles
(perfect L1, L2 hit, main memory) and reports execution cycles for the
scalar, MMX, MDMX and MOM versions of every kernel on the 4-way core.

The sweep is a :class:`~repro.sweep.SweepSpec` executed by the shared
:class:`~repro.sweep.SweepEngine`; pass ``jobs``/``cache_dir`` (or a
pre-configured engine) to parallelise or cache the regeneration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.sweep import PointResult, SweepEngine, SweepSpec, ensure_engine
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["figure5_sweep", "run_figure5", "figure5_cycles", "figure5_slowdowns"]


def figure5_sweep(
    kernels: Optional[Iterable[str]] = None,
    latencies: Sequence[int] = (1, 12, 50),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
) -> SweepSpec:
    """The Figure 5 sweep as a declarative spec (kernels x latencies x ISAs)."""
    return SweepSpec.make(
        kernels=kernels,
        configs=[MachineConfig.for_way(way, mem_latency=latency)
                 for latency in latencies],
        spec=spec,
    )


def run_figure5(
    kernels: Optional[Iterable[str]] = None,
    latencies: Sequence[int] = (1, 12, 50),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[str, Dict[str, Dict[int, "object"]]]:
    """Run the Figure 5 sweep: ``results[kernel][isa][latency] -> PointResult``.

    ``on_result`` (if given) streams each point's result as it completes.
    """
    engine = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir)
    results: Dict[str, Dict[str, Dict[int, object]]] = {}
    for result in engine.run(figure5_sweep(kernels, latencies, way, spec),
                             on_result=on_result):
        per_isa = results.setdefault(result.kernel, {})
        per_isa.setdefault(result.isa, {})[result.point.config.mem_latency] = result
    return results


def figure5_cycles(results) -> Dict[str, Dict[str, Dict[int, int]]]:
    """Reduce :func:`run_figure5` output to raw cycle counts."""
    cycles: Dict[str, Dict[str, Dict[int, int]]] = {}
    for kernel, per_isa in results.items():
        cycles[kernel] = {
            isa: {lat: run.cycles for lat, run in runs.items()}
            for isa, runs in per_isa.items()
        }
    return cycles


def figure5_slowdowns(results) -> Dict[str, Dict[str, float]]:
    """Slow-down of each ISA when memory latency goes from the smallest to
    the largest simulated value (the paper's headline latency-tolerance
    comparison)."""
    slowdowns: Dict[str, Dict[str, float]] = {}
    for kernel, per_isa in results.items():
        slowdowns[kernel] = {}
        for isa, runs in per_isa.items():
            lats = sorted(runs)
            slowdowns[kernel][isa] = runs[lats[-1]].cycles / runs[lats[0]].cycles
    return slowdowns
