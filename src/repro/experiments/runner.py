"""Single-kernel experiment runner.

``run_kernel`` is the basic unit every experiment driver is built from:
build one ISA variant of one kernel (verifying its output against the NumPy
golden reference), then simulate its trace on a machine configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.kernels.base import ISA_VARIANTS, KernelBuildResult
from repro.kernels.registry import get_kernel
from repro.timing.config import MachineConfig
from repro.timing.core import simulate_trace
from repro.timing.results import SimResult
from repro.trace.stats import TraceStats, summarize_trace
from repro.workloads.generators import WorkloadSpec

__all__ = ["RunResult", "build_kernel_variant", "run_kernel",
           "run_kernel_all_isas"]


@dataclass
class RunResult:
    """Everything produced by one (kernel, ISA, machine) run."""

    build: KernelBuildResult
    sim: SimResult
    stats: TraceStats

    @property
    def kernel(self) -> str:
        return self.build.kernel

    @property
    def isa(self) -> str:
        return self.build.isa

    @property
    def cycles(self) -> int:
        return self.sim.cycles

    @property
    def correct(self) -> bool:
        return self.build.correct


def build_kernel_variant(
    kernel_name: str,
    isa: str,
    spec: Optional[WorkloadSpec] = None,
    workload: Optional[dict] = None,
    check: bool = True,
) -> KernelBuildResult:
    """Build (without simulating) one kernel variant.

    Raises ``AssertionError`` if ``check`` is set and the variant's output
    does not match the golden reference — a build whose functional output is
    wrong must never silently contribute timing numbers.  This is the single
    home of that rule, shared by :func:`run_kernel` and the sweep engine's
    trace batching.
    """
    kernel = get_kernel(kernel_name)
    build = kernel.run_variant(isa, spec=spec, workload=workload)
    if check and not build.correct:
        raise AssertionError(
            f"{kernel_name}/{isa}: functional output does not match the golden "
            f"reference (max abs error {build.max_abs_error()})"
        )
    return build


def run_kernel(
    kernel_name: str,
    isa: str,
    config: Optional[MachineConfig] = None,
    spec: Optional[WorkloadSpec] = None,
    workload: Optional[dict] = None,
    check: bool = True,
) -> RunResult:
    """Build and simulate one kernel variant.

    Raises ``AssertionError`` if ``check`` is set and the variant's output
    does not match the golden reference (see :func:`build_kernel_variant`).
    """
    build = build_kernel_variant(kernel_name, isa, spec=spec,
                                 workload=workload, check=check)
    config = config if config is not None else MachineConfig.for_way(4)
    sim = simulate_trace(build.trace, config)
    stats = summarize_trace(build.trace)
    return RunResult(build=build, sim=sim, stats=stats)


def run_kernel_all_isas(
    kernel_name: str,
    config: Optional[MachineConfig] = None,
    spec: Optional[WorkloadSpec] = None,
    check: bool = True,
) -> Dict[str, "object"]:
    """Run all four ISA variants of a kernel on a shared workload.

    The points go through a serial :class:`~repro.sweep.SweepEngine` with
    the functional builds retained (callers rely on ``.build``), so workload
    resolution follows the same :func:`~repro.sweep.spec.resolve_spec` rule
    as every sweep driver: the seeded spec regenerates identical data for
    each variant.  For parallel/cached multi-kernel sweeps use a
    :class:`~repro.sweep.SweepSpec` and the engine directly — cached
    results cannot carry builds.
    """
    from repro.sweep import SweepEngine, SweepPoint, resolve_spec

    config = config if config is not None else MachineConfig.for_way(4)
    spec = resolve_spec(kernel_name, spec)
    points = [SweepPoint(kernel=kernel_name, isa=isa, config=config, spec=spec)
              for isa in ISA_VARIANTS]
    results = SweepEngine(check=check).run(points, keep_builds=True)
    return {point.isa: result for point, result in zip(points, results)}
