"""Experiment drivers that regenerate the paper's figures and tables."""

from repro.experiments.runner import RunResult, run_kernel, run_kernel_all_isas
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.tables import run_breakdown_tables
from repro.experiments.ablations import (
    run_lane_ablation,
    run_rob_ablation,
    run_trace_length_sensitivity,
)

__all__ = [
    "RunResult",
    "run_kernel",
    "run_kernel_all_isas",
    "run_figure4",
    "run_figure5",
    "run_breakdown_tables",
    "run_lane_ablation",
    "run_rob_ablation",
    "run_trace_length_sensitivity",
]
