"""Figure 4: speed-up of MMX / MDMX / MOM over scalar code vs issue width.

The paper evaluates all nine kernels on 1-, 2-, 4- and 8-way out-of-order
cores with an idealized 1-cycle-latency memory and reports the speed-up of
each multimedia ISA over the scalar (Alpha) code.

The sweep itself is a :class:`~repro.sweep.SweepSpec` declaration executed
by the shared :class:`~repro.sweep.SweepEngine`; pass ``jobs``/``cache_dir``
(or a pre-configured engine) to parallelise or cache the regeneration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.sweep import PointResult, SweepEngine, SweepSpec, ensure_engine
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["figure4_sweep", "run_figure4", "figure4_speedups"]


def figure4_sweep(
    kernels: Optional[Iterable[str]] = None,
    ways: Sequence[int] = (1, 2, 4, 8),
    spec: Optional[WorkloadSpec] = None,
    mem_latency: int = 1,
) -> SweepSpec:
    """The Figure 4 sweep as a declarative spec (kernels x widths x ISAs)."""
    return SweepSpec.make(
        kernels=kernels,
        configs=[MachineConfig.for_way(way, mem_latency=mem_latency)
                 for way in ways],
        spec=spec,
    )


def run_figure4(
    kernels: Optional[Iterable[str]] = None,
    ways: Sequence[int] = (1, 2, 4, 8),
    spec: Optional[WorkloadSpec] = None,
    mem_latency: int = 1,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[str, Dict[str, Dict[int, "object"]]]:
    """Run the Figure 4 sweep.

    Returns ``results[kernel][isa][way] -> PointResult``.  Each kernel uses
    one shared (seeded, deterministic) workload across all ISAs and widths so
    speed-ups are apples to apples.  ``on_result`` (if given) streams each
    point's result as it completes — see
    :meth:`~repro.sweep.engine.SweepEngine.run`.
    """
    engine = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir)
    results: Dict[str, Dict[str, Dict[int, object]]] = {}
    for result in engine.run(figure4_sweep(kernels, ways, spec, mem_latency),
                             on_result=on_result):
        per_isa = results.setdefault(result.kernel, {})
        per_isa.setdefault(result.isa, {})[result.point.config.issue_width] = result
    return results


def figure4_speedups(results) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Reduce :func:`run_figure4` output to speed-up numbers over scalar.

    Tolerates partially-populated sweeps: a kernel with no scalar baseline
    contributes no rows, and ISA variants or widths missing from the input
    are skipped rather than raising ``KeyError``.
    """
    speedups: Dict[str, Dict[str, Dict[int, float]]] = {}
    for kernel, per_isa in results.items():
        baselines = per_isa.get("scalar", {})
        speedups[kernel] = {}
        for isa in ("mmx", "mdmx", "mom"):
            per_way = {}
            for way, run in per_isa.get(isa, {}).items():
                baseline = baselines.get(way)
                if baseline is not None:
                    per_way[way] = baseline.cycles / run.cycles
            if per_way:
                speedups[kernel][isa] = per_way
    return speedups
