"""Figure 4: speed-up of MMX / MDMX / MOM over scalar code vs issue width.

The paper evaluates all nine kernels on 1-, 2-, 4- and 8-way out-of-order
cores with an idealized 1-cycle-latency memory and reports the speed-up of
each multimedia ISA over the scalar (Alpha) code.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.experiments.runner import run_kernel
from repro.kernels.base import ISA_VARIANTS
from repro.kernels.registry import get_kernel, kernel_names
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["run_figure4", "figure4_speedups"]


def run_figure4(
    kernels: Optional[Iterable[str]] = None,
    ways: Sequence[int] = (1, 2, 4, 8),
    spec: Optional[WorkloadSpec] = None,
    mem_latency: int = 1,
) -> Dict[str, Dict[str, Dict[int, "object"]]]:
    """Run the Figure 4 sweep.

    Returns ``results[kernel][isa][way] -> RunResult``.  Each kernel uses one
    shared workload across all ISAs and widths so speed-ups are apples to
    apples.
    """
    kernels = list(kernels) if kernels is not None else kernel_names()
    results: Dict[str, Dict[str, Dict[int, object]]] = {}
    for name in kernels:
        kernel = get_kernel(name)
        workload = kernel.make_workload(
            spec if spec is not None else WorkloadSpec(scale=kernel.default_scale)
        )
        per_isa: Dict[str, Dict[int, object]] = {isa: {} for isa in ISA_VARIANTS}
        for way in ways:
            config = MachineConfig.for_way(way, mem_latency=mem_latency)
            for isa in ISA_VARIANTS:
                per_isa[isa][way] = run_kernel(name, isa, config=config,
                                               workload=workload)
        results[name] = per_isa
    return results


def figure4_speedups(results) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Reduce :func:`run_figure4` output to speed-up numbers over scalar."""
    speedups: Dict[str, Dict[str, Dict[int, float]]] = {}
    for kernel, per_isa in results.items():
        speedups[kernel] = {}
        for isa in ("mmx", "mdmx", "mom"):
            speedups[kernel][isa] = {}
            for way, run in per_isa[isa].items():
                baseline = per_isa["scalar"][way]
                speedups[kernel][isa][way] = baseline.cycles / run.cycles
    return speedups
