"""Tables 1-9: per-kernel breakdown of the speed-up into IPC, OPI and R.

The paper reports, for each kernel on the 4-way core with 1-cycle memory
latency, the IPC, OPI, R, S, F, VLx and VLy of the scalar, MMX, MDMX and MOM
versions (Tables 1 to 9).

The underlying runs go through the shared :class:`~repro.sweep.SweepEngine`;
pass ``jobs``/``cache_dir`` (or a pre-configured engine) to parallelise or
cache the regeneration.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.analysis.metrics import KernelMetrics, compute_metrics
from repro.sweep import PointResult, SweepEngine, SweepSpec, ensure_engine
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["run_breakdown_tables", "breakdown_for_kernel"]

#: Paper table number for each kernel (Tables 1-9).
TABLE_NUMBERS = {
    "motion2": 1,
    "motion1": 2,
    "idct": 3,
    "rgb2ycc": 4,
    "h2v2": 5,
    "comp": 6,
    "addblock": 7,
    "ltppar": 8,
    "ltpsfilt": 9,
}


def _metrics_from_runs(runs: Dict[str, "object"]) -> Dict[str, KernelMetrics]:
    baseline = runs["scalar"].sim
    return {
        isa: compute_metrics(run.sim, run.stats, baseline)
        for isa, run in runs.items()
    }


def run_breakdown_tables(
    kernels: Optional[Iterable[str]] = None,
    way: int = 4,
    mem_latency: int = 1,
    spec: Optional[WorkloadSpec] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[str, Dict[str, KernelMetrics]]:
    """Compute the full set of breakdown tables: ``tables[kernel][isa]``.

    ``on_result`` (if given) streams each point's result as it completes.
    """
    engine = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir)
    sweep = SweepSpec.make(
        kernels=kernels,
        configs=[MachineConfig.for_way(way, mem_latency=mem_latency)],
        spec=spec,
    )
    runs: Dict[str, Dict[str, object]] = {}
    for result in engine.run(sweep, on_result=on_result):
        runs.setdefault(result.kernel, {})[result.isa] = result
    return {name: _metrics_from_runs(per_isa) for name, per_isa in runs.items()}


def breakdown_for_kernel(
    kernel_name: str,
    way: int = 4,
    mem_latency: int = 1,
    spec: Optional[WorkloadSpec] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
) -> Dict[str, KernelMetrics]:
    """Compute one breakdown table (IPC / OPI / R / S / F / VLx / VLy)."""
    return run_breakdown_tables(
        kernels=[kernel_name], way=way, mem_latency=mem_latency, spec=spec,
        jobs=jobs, cache_dir=cache_dir, engine=engine,
    )[kernel_name]
