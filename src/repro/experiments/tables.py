"""Tables 1-9: per-kernel breakdown of the speed-up into IPC, OPI and R.

The paper reports, for each kernel on the 4-way core with 1-cycle memory
latency, the IPC, OPI, R, S, F, VLx and VLy of the scalar, MMX, MDMX and MOM
versions (Tables 1 to 9).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.metrics import KernelMetrics, compute_metrics
from repro.experiments.runner import run_kernel_all_isas
from repro.kernels.registry import kernel_names
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = ["run_breakdown_tables", "breakdown_for_kernel"]

#: Paper table number for each kernel (Tables 1-9).
TABLE_NUMBERS = {
    "motion2": 1,
    "motion1": 2,
    "idct": 3,
    "rgb2ycc": 4,
    "h2v2": 5,
    "comp": 6,
    "addblock": 7,
    "ltppar": 8,
    "ltpsfilt": 9,
}


def breakdown_for_kernel(
    kernel_name: str,
    way: int = 4,
    mem_latency: int = 1,
    spec: Optional[WorkloadSpec] = None,
) -> Dict[str, KernelMetrics]:
    """Compute one breakdown table (IPC / OPI / R / S / F / VLx / VLy)."""
    config = MachineConfig.for_way(way, mem_latency=mem_latency)
    runs = run_kernel_all_isas(kernel_name, config=config, spec=spec)
    baseline = runs["scalar"].sim
    return {
        isa: compute_metrics(run.sim, run.stats, baseline)
        for isa, run in runs.items()
    }


def run_breakdown_tables(
    kernels: Optional[Iterable[str]] = None,
    way: int = 4,
    mem_latency: int = 1,
    spec: Optional[WorkloadSpec] = None,
) -> Dict[str, Dict[str, KernelMetrics]]:
    """Compute the full set of breakdown tables: ``tables[kernel][isa]``."""
    kernels = list(kernels) if kernels is not None else kernel_names()
    return {
        name: breakdown_for_kernel(name, way=way, mem_latency=mem_latency, spec=spec)
        for name in kernels
    }
