"""Ablation experiments beyond the paper's figures.

Section 4.4 of the paper argues that MOM's advantage comes from fetch-
pressure reduction and that further performance is available by replicating
the vector functional units ("simply replicating the number of parallel
functional units which execute a matrix instruction").  These ablations make
those arguments measurable in the reproduction:

* :func:`run_lane_ablation` — MOM performance vs vector lanes per multimedia
  functional unit (the replication argument).
* :func:`run_rob_ablation` — sensitivity of each ISA to the out-of-order
  window size (MOM needs far fewer in-flight instructions).
* :func:`run_trace_length_sensitivity` — checks that the per-iteration
  metrics are stable in the workload scale, justifying the scaled-down
  workloads documented in DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.experiments.runner import run_kernel, run_kernel_all_isas
from repro.kernels.registry import get_kernel
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = [
    "run_lane_ablation",
    "run_rob_ablation",
    "run_trace_length_sensitivity",
]


def run_lane_ablation(
    kernel_name: str,
    lanes: Sequence[int] = (1, 2, 4),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
) -> Dict[int, "object"]:
    """MOM cycles as the number of vector lanes per multimedia FU grows."""
    kernel = get_kernel(kernel_name)
    workload = kernel.make_workload(
        spec if spec is not None else WorkloadSpec(scale=kernel.default_scale)
    )
    results = {}
    for lane_count in lanes:
        config = MachineConfig.for_way(way).with_updates(
            name=f"way{way}-lanes{lane_count}", media_lanes=lane_count,
            mem_port_width=2 * lane_count,
        )
        results[lane_count] = run_kernel(kernel_name, "mom", config=config,
                                         workload=workload)
    return results


def run_rob_ablation(
    kernel_name: str,
    rob_sizes: Sequence[int] = (16, 32, 64, 128),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
) -> Dict[int, Dict[str, "object"]]:
    """Cycles for each ISA as the reorder-buffer size varies."""
    kernel = get_kernel(kernel_name)
    workload = kernel.make_workload(
        spec if spec is not None else WorkloadSpec(scale=kernel.default_scale)
    )
    results: Dict[int, Dict[str, object]] = {}
    for rob in rob_sizes:
        config = MachineConfig.for_way(way).with_updates(
            name=f"way{way}-rob{rob}", rob_size=rob
        )
        results[rob] = {
            isa: run_kernel(kernel_name, isa, config=config, workload=workload)
            for isa in ("scalar", "mmx", "mdmx", "mom")
        }
    return results


def run_trace_length_sensitivity(
    kernel_name: str,
    scales: Sequence[int] = (1, 2, 4, 8),
    way: int = 4,
) -> Dict[int, Dict[str, "object"]]:
    """Per-scale runs used to check that derived metrics are scale-stable."""
    results: Dict[int, Dict[str, object]] = {}
    config = MachineConfig.for_way(way)
    for scale in scales:
        results[scale] = run_kernel_all_isas(
            kernel_name, config=config, spec=WorkloadSpec(scale=scale)
        )
    return results
