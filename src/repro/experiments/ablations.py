"""Ablation experiments beyond the paper's figures.

Section 4.4 of the paper argues that MOM's advantage comes from fetch-
pressure reduction and that further performance is available by replicating
the vector functional units ("simply replicating the number of parallel
functional units which execute a matrix instruction").  These ablations make
those arguments measurable in the reproduction:

* :func:`run_lane_ablation` — MOM performance vs vector lanes per multimedia
  functional unit (the replication argument).
* :func:`run_rob_ablation` — sensitivity of each ISA to the out-of-order
  window size (MOM needs far fewer in-flight instructions).
* :func:`run_trace_length_sensitivity` — checks that the per-iteration
  metrics are stable in the workload scale, justifying the scaled-down
  workloads documented in DESIGN.md.

All three route their points through the shared
:class:`~repro.sweep.SweepEngine` (pass ``jobs``/``cache_dir`` or an engine
to parallelise or cache them).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.kernels.base import ISA_VARIANTS
from repro.sweep import (PointResult, SweepEngine, SweepPoint, ensure_engine,
                         resolve_spec)
from repro.timing.config import MachineConfig
from repro.workloads.generators import WorkloadSpec

__all__ = [
    "run_lane_ablation",
    "run_rob_ablation",
    "run_trace_length_sensitivity",
]


def run_lane_ablation(
    kernel_name: str,
    lanes: Sequence[int] = (1, 2, 4),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[int, "object"]:
    """MOM cycles as the number of vector lanes per multimedia FU grows."""
    spec = resolve_spec(kernel_name, spec)
    points = [
        SweepPoint(
            kernel=kernel_name, isa="mom", spec=spec,
            config=MachineConfig.for_way(way).with_updates(
                name=f"way{way}-lanes{lane_count}", media_lanes=lane_count,
                mem_port_width=2 * lane_count,
            ),
        )
        for lane_count in lanes
    ]
    results = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir).run(
        points, on_result=on_result)
    return {lane_count: result for lane_count, result in zip(lanes, results)}


def run_rob_ablation(
    kernel_name: str,
    rob_sizes: Sequence[int] = (16, 32, 64, 128),
    way: int = 4,
    spec: Optional[WorkloadSpec] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[int, Dict[str, "object"]]:
    """Cycles for each ISA as the reorder-buffer size varies."""
    spec = resolve_spec(kernel_name, spec)
    points = [
        SweepPoint(
            kernel=kernel_name, isa=isa, spec=spec,
            config=MachineConfig.for_way(way).with_updates(
                name=f"way{way}-rob{rob}", rob_size=rob),
        )
        for rob in rob_sizes
        for isa in ISA_VARIANTS
    ]
    flat = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir).run(
        points, on_result=on_result)
    results: Dict[int, Dict[str, object]] = {}
    for point, result in zip(points, flat):
        results.setdefault(point.config.rob_size, {})[point.isa] = result
    return results


def run_trace_length_sensitivity(
    kernel_name: str,
    scales: Sequence[int] = (1, 2, 4, 8),
    way: int = 4,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    engine: Optional[SweepEngine] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> Dict[int, Dict[str, "object"]]:
    """Per-scale runs used to check that derived metrics are scale-stable."""
    config = MachineConfig.for_way(way)
    points = [
        SweepPoint(kernel=kernel_name, isa=isa, config=config,
                   spec=WorkloadSpec(scale=scale))
        for scale in scales
        for isa in ISA_VARIANTS
    ]
    flat = ensure_engine(engine, jobs=jobs, cache_dir=cache_dir).run(
        points, on_result=on_result)
    results: Dict[int, Dict[str, object]] = {}
    for point, result in zip(points, flat):
        results.setdefault(point.spec.scale, {})[point.isa] = result
    return results
