#!/usr/bin/env python3
"""Regenerate Figure 4 of the paper: speed-up over scalar vs issue width.

Runs all nine kernels on 1-, 2-, 4- and 8-way machines for the four ISAs and
prints the speed-up table (the data behind the paper's bar charts).

Run:  python examples/run_figure4.py [scale] [--jobs N] [--cache-dir DIR]
                                     [--stream-jsonl PATH] [--resume PATH]

``--jobs`` fans the 144 sweep points out over worker processes; with
``--cache-dir`` a warm re-run does zero simulations (and a warm *miss* —
a new machine configuration over cached traces — does zero trace builds).
``--stream-jsonl`` appends each point's result as a JSON line the moment
it completes; on a TTY a live progress line tracks the sweep.  With
``--resume PATH`` every completed point lands in a write-ahead journal,
so an interrupted run picks up where it stopped.
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.report import format_speedup_table
from repro.cli import (add_sweep_arguments, engine_from_args, engine_summary,
                       stream_sinks)
from repro.experiments.figure4 import figure4_speedups, run_figure4
from repro.workloads.generators import WorkloadSpec


def main() -> int:
    parser = argparse.ArgumentParser(description="Regenerate Figure 4")
    args = add_sweep_arguments(parser).parse_args()
    spec = WorkloadSpec(scale=args.scale) if args.scale else None
    engine = engine_from_args(args)
    start = time.time()
    with stream_sinks(args, total=9 * 4 * 4) as on_result:
        results = run_figure4(spec=spec, engine=engine, on_result=on_result)
    speedups = figure4_speedups(results)
    print(format_speedup_table(speedups))
    print(f"\n(regenerated in {time.time() - start:.1f}s: "
          f"{engine_summary(engine)})")

    # Headline summary matching the paper's abstract.
    extra = []
    for kernel, per_isa in speedups.items():
        best_subword = max(per_isa["mmx"][4], per_isa["mdmx"][4])
        extra.append(per_isa["mom"][4] / best_subword)
    print(f"MOM additional speed-up over the best sub-word ISA at 4-way: "
          f"{min(extra):.2f}x .. {max(extra):.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
