#!/usr/bin/env python3
"""Domain scenario: an MPEG-2 decode macroblock pipeline.

The paper motivates MOM with video codecs.  This example assembles the three
decoder kernels the paper evaluates — inverse DCT, motion-compensation
blending and the saturated residual add — into the per-macroblock work of a
small synthetic "frame", and compares the end-to-end cycle cost of the four
ISAs (per-kernel and total), i.e. the Amdahl view across a realistic kernel
mix rather than one kernel at a time.

Run:  python examples/video_decode_pipeline.py [macroblocks]
"""

from __future__ import annotations

import sys

from repro import MachineConfig
from repro.experiments.runner import run_kernel_all_isas
from repro.workloads.generators import WorkloadSpec

#: Kernel invocations per macroblock in an MPEG-2 P-frame decode:
#: six 8x8 blocks go through the IDCT and the residual add, and one 16x16
#: luma block (plus chroma, folded in) is motion compensated.
PIPELINE = (
    ("idct", 6),
    ("addblock", 6),
    ("comp", 1),
)

ISAS = ("scalar", "mmx", "mdmx", "mom")


def main() -> int:
    macroblocks = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    config = MachineConfig.for_way(4)
    print(f"MPEG-2 decode pipeline over {macroblocks} macroblocks "
          f"(4-way core, 1-cycle memory)\n")

    totals = {isa: 0 for isa in ISAS}
    print(f"{'kernel':10s} {'calls':>6s} " +
          " ".join(f"{isa:>10s}" for isa in ISAS))
    for kernel_name, calls_per_mb in PIPELINE:
        calls = calls_per_mb * macroblocks
        runs = run_kernel_all_isas(kernel_name, config=config,
                                   spec=WorkloadSpec(scale=1))
        assert all(run.correct for run in runs.values())
        cells = []
        for isa in ISAS:
            # cycles for one kernel invocation at scale 1, times call count
            cycles = runs[isa].cycles * calls
            totals[isa] += cycles
            cells.append(f"{cycles:10d}")
        print(f"{kernel_name:10s} {calls:6d} " + " ".join(cells))

    print(f"{'total':10s} {'':6s} " +
          " ".join(f"{totals[isa]:10d}" for isa in ISAS))
    print()
    for isa in ("mmx", "mdmx", "mom"):
        print(f"pipeline speed-up of {isa.upper():5s} over scalar: "
              f"{totals['scalar'] / totals[isa]:5.2f}x")
    print(f"pipeline speed-up of MOM over MMX          : "
          f"{totals['mmx'] / totals['mom']:5.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
