#!/usr/bin/env python3
"""The paper's Figure 2, executable: three ways to vectorise one loop nest.

Figure 2 of the paper compares how a conventional vector ISA, an MMX-like
ISA and MOM each vectorise

    for (i = 1 to 4)
        for (j = 1 to 4)
            d[i][j] = c[i][j] + a[i];

* the MMX-like ISA vectorises the inner loop across dimension X (sub-word
  lanes), one instruction per row;
* a conventional vector ISA vectorises across dimension Y (rows), one
  element per cycle — here approximated by the scalar builder with the
  per-element operations spelled out;
* MOM vectorises both dimensions at once: a whole 4x4 matrix per instruction.

The example emits all three instruction streams with the builder API, checks
they compute the same result and reports instruction counts and simulated
cycles on a 1-way core (where fetch pressure — the point of the figure — is
most visible).
"""

from __future__ import annotations

import numpy as np

from repro.common.datatypes import S16
from repro.frontend.builders import make_builder
from repro.timing.config import MachineConfig
from repro.timing.core import simulate_trace

ROWS, COLS = 4, 4


def build_inputs(builder):
    rng = np.random.default_rng(2)
    c = rng.integers(0, 100, size=(ROWS, COLS)).astype(np.int64)
    a = rng.integers(0, 100, size=ROWS).astype(np.int64)
    c_addr = builder.machine.alloc_array(c, S16)
    a_addr = builder.machine.alloc_array(a, S16)
    d_addr = builder.machine.alloc_zeros(ROWS * COLS, S16)
    return c, a, c_addr, a_addr, d_addr


def scalar_version():
    """One operation at a time (the Alpha baseline)."""
    b = make_builder("scalar", name="figure2")
    c, a, c_addr, a_addr, d_addr = build_inputs(b)
    R_C, R_A, R_D, R_X, R_Y = 1, 2, 3, 4, 5
    b.li(R_C, c_addr)
    b.li(R_A, a_addr)
    b.li(R_D, d_addr)
    for i in range(ROWS):
        b.ldw(R_Y, R_A, i * 2)
        for j in range(COLS):
            b.ldw(R_X, R_C, (i * COLS + j) * 2)
            b.add(R_X, R_X, R_Y)
            b.stw(R_X, R_D, (i * COLS + j) * 2)
    out = b.machine.read_array(d_addr, ROWS * COLS, S16).reshape(ROWS, COLS)
    return b, out, c + a[:, None]


def mmx_version():
    """Dimension X only: one packed add per row, plus a splat per row."""
    b = make_builder("mmx", name="figure2")
    c, a, c_addr, a_addr, d_addr = build_inputs(b)
    R_C, R_A, R_D, R_S = 1, 2, 3, 4
    b.li(R_C, c_addr)
    b.li(R_A, a_addr)
    b.li(R_D, d_addr)
    for i in range(ROWS):
        b.ldw(R_S, R_A, i * 2)
        b.splat(1, R_S, S16)
        b.movq_ld(0, R_C, i * 8, S16)
        b.padd(2, 0, 1, S16)
        b.movq_st(2, R_D, i * 8, S16)
    out = b.machine.read_array(d_addr, ROWS * COLS, S16).reshape(ROWS, COLS)
    return b, out, c + a[:, None]


def mom_version():
    """Both dimensions at once: the whole 4x4 matrix in three instructions."""
    b = make_builder("mom", name="figure2")
    c, a, c_addr, a_addr, d_addr = build_inputs(b)
    R_C, R_A, R_D, R_STRIDE, R_ASTRIDE = 1, 2, 3, 4, 5
    b.li(R_C, c_addr)
    b.li(R_A, a_addr)
    b.li(R_D, d_addr)
    b.li(R_STRIDE, COLS * 2)
    b.li(R_ASTRIDE, 2)
    b.setvl(ROWS)
    b.mom_ld(0, R_C, R_STRIDE, S16)          # the whole c matrix
    # a[i] loaded as one element per row, then broadcast across the row by
    # multiplying a column of ones — modelled here with a strided load of the
    # a vector followed by a row-wise unpack trick; the simplest faithful
    # sequence uses the splat of each row via the transpose of a 1-lane load.
    b.mom_ld(1, R_A, R_ASTRIDE, S16)          # a[i] in lane 0 of each row
    b.mom_punpckl(1, 1, 1, S16)               # (a, a, x, x)
    b.mom_punpckl(1, 1, 1, S16)               # (a, a, a, a)
    b.mom_padd(2, 0, 1, S16)
    b.mom_st(2, R_D, R_STRIDE, S16)
    out = b.machine.read_array(d_addr, ROWS * COLS, S16).reshape(ROWS, COLS)
    return b, out, c + a[:, None]


def main() -> int:
    config = MachineConfig.for_way(1)
    print("Figure 2 of the paper, executable: d[i][j] = c[i][j] + a[i] "
          "(4x4, 16-bit)\n")
    print(f"{'paradigm':28s} {'instructions':>13s} {'cycles (1-way)':>15s}")
    for label, fn in (("scalar (one element at a time)", scalar_version),
                      ("MMX-like (dimension X only)", mmx_version),
                      ("MOM (dimensions X and Y)", mom_version)):
        builder, out, expected = fn()
        assert np.array_equal(out, expected), f"{label} computed a wrong result"
        cycles = simulate_trace(builder.trace, config).cycles
        print(f"{label:28s} {len(builder.trace):13d} {cycles:15d}")
    print("\nAll three compute identical results; MOM needs a handful of "
          "instructions where the\nsub-word ISA needs one per row and the "
          "scalar code one per element — the fetch-pressure\nargument of the "
          "paper in miniature.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
