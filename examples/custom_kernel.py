#!/usr/bin/env python3
"""Extending the library: write and evaluate your own kernel.

The nine paper kernels are not special — any computation expressed against
the builder API can be compared across the four ISAs.  This example defines
an *alpha blending* kernel (per-pixel ``out = (alpha*a + (256-alpha)*b) >> 8``
on 8-bit images, a staple of video overlays that the paper's introduction
gestures at), implements its scalar / MMX / MDMX / MOM variants, verifies
them against a NumPy reference and prints the usual breakdown.

Run:  python examples/custom_kernel.py [rows]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import MachineConfig
from repro.analysis.metrics import compute_metrics
from repro.analysis.report import format_breakdown_table
from repro.common.datatypes import S16, U8
from repro.kernels.base import Kernel
from repro.timing.core import simulate_trace
from repro.trace.stats import summarize_trace
from repro.workloads.generators import WorkloadSpec, random_u8_block

_WIDTH = 8  # pixels per row


class AlphaBlendKernel(Kernel):
    """Constant-alpha blend of two 8-bit images, row by row."""

    name = "alphablend"
    description = "out = (alpha*a + (256-alpha)*b) >> 8 on 8-bit pixels"
    benchmark = "custom"
    default_scale = 8

    ALPHA = 96  # Q8 blend factor

    def make_workload(self, spec: WorkloadSpec):
        rng = spec.rng()
        rows = max(1, spec.scale)
        return {
            "a": random_u8_block(rng, rows, _WIDTH),
            "b": random_u8_block(rng, rows, _WIDTH),
            "rows": rows,
        }

    def reference(self, workload):
        a = workload["a"].astype(np.int64)
        b = workload["b"].astype(np.int64)
        return (self.ALPHA * a + (256 - self.ALPHA) * b) >> 8

    # -- shared setup ----------------------------------------------------

    def _setup(self, builder, workload):
        a_addr = builder.machine.alloc_array(workload["a"], U8)
        b_addr = builder.machine.alloc_array(workload["b"], U8)
        out_addr = builder.machine.alloc_zeros(workload["rows"] * _WIDTH, U8)
        return a_addr, b_addr, out_addr

    def _read(self, builder, out_addr, rows):
        return builder.machine.read_array(out_addr, rows * _WIDTH, U8).reshape(rows, _WIDTH)

    # -- variants ----------------------------------------------------------

    def build_scalar(self, b, workload):
        a_addr, b_addr, out_addr = self._setup(b, workload)
        rows = workload["rows"]
        R_A, R_B, R_OUT, R_CNT, R_X, R_Y, R_S = 1, 2, 3, 4, 5, 6, 7
        b.li(R_A, a_addr)
        b.li(R_B, b_addr)
        b.li(R_OUT, out_addr)
        b.li(R_CNT, rows)
        for _row in range(rows):
            for col in range(_WIDTH):
                b.ldbu(R_X, R_A, col)
                b.ldbu(R_Y, R_B, col)
                b.muli(R_X, R_X, self.ALPHA)
                b.muli(R_Y, R_Y, 256 - self.ALPHA)
                b.add(R_S, R_X, R_Y)
                b.srai(R_S, R_S, 8)
                b.stb(R_S, R_OUT, col)
            b.addi(R_A, R_A, _WIDTH)
            b.addi(R_B, R_B, _WIDTH)
            b.addi(R_OUT, R_OUT, _WIDTH)
            b.subi(R_CNT, R_CNT, 1)
            b.branch(R_CNT, "bgt")
        return self._read(b, out_addr, rows)

    def _build_packed(self, b, workload, use_accumulator: bool):
        a_addr, b_addr, out_addr = self._setup(b, workload)
        rows = workload["rows"]
        R_A, R_B, R_OUT, R_CNT = 1, 2, 3, 4
        MM_ZERO, MM_CA, MM_CB = 29, 30, 31
        b.pzero(MM_ZERO)
        b.load_const(MM_CA, [self.ALPHA] * 4, S16)
        b.load_const(MM_CB, [256 - self.ALPHA] * 4, S16)
        b.li(R_A, a_addr)
        b.li(R_B, b_addr)
        b.li(R_OUT, out_addr)
        b.li(R_CNT, rows)
        for _row in range(rows):
            b.movq_ld(0, R_A, 0, U8)
            b.movq_ld(1, R_B, 0, U8)
            b.punpckl(2, 0, MM_ZERO, U8)
            b.punpckh(3, 0, MM_ZERO, U8)
            b.punpckl(4, 1, MM_ZERO, U8)
            b.punpckh(5, 1, MM_ZERO, U8)
            if use_accumulator:
                for lo_hi, (src_a, src_b) in enumerate(((2, 4), (3, 5))):
                    b.acc_clear(lo_hi, S16)
                    b.acc_madd(lo_hi, src_a, MM_CA, S16)
                    b.acc_madd(lo_hi, src_b, MM_CB, S16)
                    b.acc_read(6 + lo_hi, lo_hi, S16, shift=8, rounding=False)
            else:
                b.pmull(6, 2, MM_CA, S16)
                b.pmull(8, 4, MM_CB, S16)
                b.padd(6, 6, 8, S16)
                b.psrl(6, 6, 8, S16)
                b.pmull(7, 3, MM_CA, S16)
                b.pmull(8, 5, MM_CB, S16)
                b.padd(7, 7, 8, S16)
                b.psrl(7, 7, 8, S16)
            b.packus(9, 6, 7, S16)
            b.movq_st(9, R_OUT, 0, U8)
            b.addi(R_A, R_A, _WIDTH)
            b.addi(R_B, R_B, _WIDTH)
            b.addi(R_OUT, R_OUT, _WIDTH)
            b.subi(R_CNT, R_CNT, 1)
            b.branch(R_CNT, "bgt")
        return self._read(b, out_addr, rows)

    def build_mmx(self, b, workload):
        return self._build_packed(b, workload, use_accumulator=False)

    def build_mdmx(self, b, workload):
        return self._build_packed(b, workload, use_accumulator=True)

    def build_mom(self, b, workload):
        a_addr, b_addr, out_addr = self._setup(b, workload)
        rows = workload["rows"]
        R_A, R_B, R_OUT, R_STRIDE, R_CA, R_CB = 1, 2, 3, 4, 5, 6
        MR_ZERO, MR_CA, MR_CB = 15, 14, 13
        vl = min(rows, 16)
        b.li(R_STRIDE, _WIDTH)
        b.li(R_CA, self.ALPHA)
        b.li(R_CB, 256 - self.ALPHA)
        b.setvl(vl)
        b.mom_zero(MR_ZERO)
        b.mom_splat(MR_CA, R_CA, S16)
        b.mom_splat(MR_CB, R_CB, S16)
        for chunk_start in range(0, rows, vl):
            chunk = min(vl, rows - chunk_start)
            if chunk != b.vl:
                b.setvl(chunk)
            b.li(R_A, a_addr + chunk_start * _WIDTH)
            b.li(R_B, b_addr + chunk_start * _WIDTH)
            b.li(R_OUT, out_addr + chunk_start * _WIDTH)
            b.mom_ld(0, R_A, R_STRIDE, U8)
            b.mom_ld(1, R_B, R_STRIDE, U8)
            b.mom_punpckl(2, 0, MR_ZERO, U8)
            b.mom_punpckh(3, 0, MR_ZERO, U8)
            b.mom_punpckl(4, 1, MR_ZERO, U8)
            b.mom_punpckh(5, 1, MR_ZERO, U8)
            b.mom_pmull(2, 2, MR_CA, S16)
            b.mom_pmull(3, 3, MR_CA, S16)
            b.mom_pmull(4, 4, MR_CB, S16)
            b.mom_pmull(5, 5, MR_CB, S16)
            b.mom_padd(2, 2, 4, S16)
            b.mom_padd(3, 3, 5, S16)
            b.mom_psrl(2, 2, 8, S16)
            b.mom_psrl(3, 3, 8, S16)
            b.mom_packus(6, 2, 3, S16)
            b.mom_st(6, R_OUT, R_STRIDE, U8)
        return self._read(b, out_addr, rows)


def main() -> int:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    kernel = AlphaBlendKernel()
    config = MachineConfig.for_way(4)
    results = kernel.run_all_variants(WorkloadSpec(scale=rows))

    sims, stats = {}, {}
    for isa, build in results.items():
        assert build.correct, f"{isa} variant diverges from the reference"
        sims[isa] = simulate_trace(build.trace, config)
        stats[isa] = summarize_trace(build.trace)

    metrics = {isa: compute_metrics(sims[isa], stats[isa], sims["scalar"])
               for isa in results}
    print(f"Custom kernel '{kernel.name}' over {rows} rows of {_WIDTH} pixels\n")
    print(format_breakdown_table(kernel.name, metrics))
    print()
    print(f"MOM speed-up over scalar: {metrics['mom'].speedup:5.2f}x")
    print(f"MOM speed-up over MMX   : {sims['mmx'].cycles / sims['mom'].cycles:5.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
