#!/usr/bin/env python3
"""Regenerate Tables 1-9 of the paper: IPC / OPI / R / S / F / VLx / VLy per
kernel and ISA on the 4-way core with perfect (1-cycle) memory.

Run:  python examples/run_tables.py [scale] [--jobs N] [--cache-dir DIR]
                                    [--stream-jsonl PATH] [--resume PATH]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.report import format_breakdown_table
from repro.cli import (add_sweep_arguments, engine_from_args, engine_summary,
                       stream_sinks)
from repro.experiments.tables import TABLE_NUMBERS, run_breakdown_tables
from repro.workloads.generators import WorkloadSpec


def main() -> int:
    parser = argparse.ArgumentParser(description="Regenerate Tables 1-9")
    args = add_sweep_arguments(parser).parse_args()
    spec = WorkloadSpec(scale=args.scale) if args.scale else None
    engine = engine_from_args(args)
    start = time.time()
    with stream_sinks(args, total=9 * 4) as on_result:
        tables = run_breakdown_tables(spec=spec, engine=engine,
                                      on_result=on_result)
    for kernel in sorted(tables, key=lambda k: TABLE_NUMBERS[k]):
        print(f"\n(paper Table {TABLE_NUMBERS[kernel]})")
        print(format_breakdown_table(kernel, tables[kernel]))
    print(f"\n(regenerated in {time.time() - start:.1f}s: "
          f"{engine_summary(engine)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
