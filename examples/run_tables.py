#!/usr/bin/env python3
"""Regenerate Tables 1-9 of the paper: IPC / OPI / R / S / F / VLx / VLy per
kernel and ISA on the 4-way core with perfect (1-cycle) memory.

Run:  python examples/run_tables.py [scale]
"""

from __future__ import annotations

import sys
import time

from repro.analysis.report import format_breakdown_table
from repro.experiments.tables import TABLE_NUMBERS, run_breakdown_tables
from repro.workloads.generators import WorkloadSpec


def main() -> int:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else None
    spec = WorkloadSpec(scale=scale) if scale else None
    start = time.time()
    tables = run_breakdown_tables(spec=spec)
    for kernel in sorted(tables, key=lambda k: TABLE_NUMBERS[k]):
        print(f"\n(paper Table {TABLE_NUMBERS[kernel]})")
        print(format_breakdown_table(kernel, tables[kernel]))
    print(f"\n(regenerated in {time.time() - start:.1f}s of simulation)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
