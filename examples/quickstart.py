#!/usr/bin/env python3
"""Quickstart: run one kernel on all four ISAs and print the paper's metrics.

This is the five-minute tour of the public API:

1. pick a kernel from the registry,
2. build its scalar / MMX / MDMX / MOM variants on a shared synthetic
   workload (every variant is checked against the NumPy golden reference),
3. simulate each instruction trace on the 4-way out-of-order core,
4. derive the paper's metrics (IPC, OPI, R, S, F, VLx, VLy).

Run:  python examples/quickstart.py [kernel] [scale]

The same stack is scriptable from the shell; a typical session::

    $ python -m repro --version
    repro 1.0.0 (timing model v1, front end v1)

    $ python -m repro figure4 --jobs 4 --cache-dir .sweep-cache
    ... speed-up table ...
    [sweep] 144 point(s) simulated, 0 from cache; 108 trace hit(s),
    36 trace build(s) (.sweep-cache)

    $ python -m repro cache stats --cache-dir .sweep-cache
    cache root: .sweep-cache
      results     144 entries, 215.3 KiB
      traces       36 entries, 5.6 MiB
      total       180 entries, 5.8 MiB
      oldest entry: 0.0 day(s) old

    $ python -m repro cache gc --cache-dir .sweep-cache --max-mb 4
    evicted 9 entries (2.1 MiB freed); 171 kept (3.7 MiB)

(each kernel's trace is built once for its first machine configuration and
served from the trace cache for the other three widths — and by any warm
re-run, in any process, until ``repro cache gc``/``clear`` evicts it).
"""

from __future__ import annotations

import sys

from repro import MachineConfig, kernel_names
from repro.analysis.metrics import compute_metrics
from repro.analysis.report import format_breakdown_table
from repro.experiments.runner import run_kernel_all_isas
from repro.workloads.generators import WorkloadSpec


def main() -> int:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "motion1"
    scale = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    if kernel not in kernel_names():
        print(f"unknown kernel {kernel!r}; choose one of: {', '.join(kernel_names())}")
        return 1

    print(f"Kernel: {kernel}   workload scale: {scale}")
    print("Building all four ISA variants and simulating on a 4-way core...\n")

    config = MachineConfig.for_way(4)
    runs = run_kernel_all_isas(kernel, config=config, spec=WorkloadSpec(scale=scale))

    for isa, run in runs.items():
        status = "OK " if run.correct else "BAD"
        print(f"  [{status}] {isa:6s}  {len(run.build.trace):6d} instructions  "
              f"{run.sim.operations:7d} operations  {run.cycles:6d} cycles")

    baseline = runs["scalar"].sim
    metrics = {isa: compute_metrics(run.sim, run.stats, baseline)
               for isa, run in runs.items()}
    print()
    print(format_breakdown_table(kernel, metrics))
    print()
    print(f"MOM speed-up over scalar : {metrics['mom'].speedup:5.1f}x")
    print(f"MOM speed-up over MMX    : "
          f"{runs['mmx'].cycles / runs['mom'].cycles:5.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
