#!/usr/bin/env python3
"""Regenerate Figure 5 of the paper: impact of memory latency (4-way core).

Sweeps the idealized memory latency over 1, 12 and 50 cycles for all nine
kernels and all four ISAs, prints the cycle counts and the slow-down of each
ISA from the 1-cycle to the 50-cycle design point.

Run:  python examples/run_figure5.py [scale] [--jobs N] [--cache-dir DIR]
                                     [--stream-jsonl PATH] [--resume PATH]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis.report import format_latency_table
from repro.cli import (add_sweep_arguments, engine_from_args, engine_summary,
                       stream_sinks)
from repro.experiments.figure5 import figure5_cycles, figure5_slowdowns, run_figure5
from repro.workloads.generators import WorkloadSpec


def main() -> int:
    parser = argparse.ArgumentParser(description="Regenerate Figure 5")
    args = add_sweep_arguments(parser).parse_args()
    spec = WorkloadSpec(scale=args.scale) if args.scale else None
    engine = engine_from_args(args)
    start = time.time()
    with stream_sinks(args, total=9 * 3 * 4) as on_result:
        results = run_figure5(spec=spec, engine=engine, on_result=on_result)
    print(format_latency_table(figure5_cycles(results)))

    print("\nSlow-down from 1-cycle to 50-cycle memory latency:")
    slowdowns = figure5_slowdowns(results)
    for kernel, per_isa in slowdowns.items():
        cells = "  ".join(f"{isa:6s} {value:4.1f}x" for isa, value in per_isa.items())
        print(f"  {kernel:10s} {cells}")
    print(f"\n(regenerated in {time.time() - start:.1f}s: "
          f"{engine_summary(engine)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
