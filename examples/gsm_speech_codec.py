#!/usr/bin/env python3
"""Domain scenario: the GSM 06.10 long-term-prediction path.

The paper's two audio kernels come from the GSM speech codec: the encoder's
long-term-prediction parameter search (a lag sweep of 40-sample
cross-correlations) and the decoder's long-term synthesis filter.  This
example runs both over a number of speech sub-frames and reports how the lag
search dominates the encode side and how each ISA copes, including the
memory-latency sensitivity of the whole codec path (an embedded-system view:
the paper argues MOM suits embedded media devices because of its latency
tolerance).

Run:  python examples/gsm_speech_codec.py [subframes]
"""

from __future__ import annotations

import sys

from repro import MachineConfig
from repro.experiments.runner import run_kernel_all_isas
from repro.workloads.generators import WorkloadSpec

ISAS = ("scalar", "mmx", "mdmx", "mom")


def run_codec(mem_latency: int, subframes: int):
    config = MachineConfig.for_way(4, mem_latency=mem_latency)
    encode = run_kernel_all_isas("ltppar", config=config,
                                 spec=WorkloadSpec(scale=subframes))
    decode = run_kernel_all_isas("ltpsfilt", config=config,
                                 spec=WorkloadSpec(scale=subframes))
    totals = {isa: encode[isa].cycles + decode[isa].cycles for isa in ISAS}
    return encode, decode, totals


def main() -> int:
    subframes = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    print(f"GSM long-term-prediction path over {subframes} sub-frames "
          f"(4-way core)\n")

    encode, decode, totals = run_codec(mem_latency=1, subframes=subframes)
    print(f"{'':8s} {'ltppar (enc)':>14s} {'ltpsfilt (dec)':>14s} {'total':>10s}")
    for isa in ISAS:
        print(f"{isa:8s} {encode[isa].cycles:14d} {decode[isa].cycles:14d} "
              f"{totals[isa]:10d}")
    print()
    for isa in ("mmx", "mdmx", "mom"):
        print(f"codec speed-up of {isa.upper():5s} over scalar: "
              f"{totals['scalar'] / totals[isa]:5.2f}x")

    # Embedded view: how much does a slow memory system hurt each ISA?
    print("\nWith a 50-cycle memory (no caches, streaming from DRAM):")
    _, _, slow_totals = run_codec(mem_latency=50, subframes=subframes)
    for isa in ISAS:
        print(f"  {isa:8s} {slow_totals[isa]:10d} cycles "
              f"({slow_totals[isa] / totals[isa]:4.1f}x slower than perfect memory)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
